#include "uvm/fault_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace uvmsim {
namespace {

FaultBuffer::Config buf_cfg() {
  FaultBuffer::Config c;
  c.capacity = 1024;
  c.ready_lag = 300;
  return c;
}

FaultEntry entry(VirtPage p, FaultAccessType a = FaultAccessType::Read) {
  FaultEntry e;
  e.page = p;
  e.block = block_of_page(p);
  e.range = 0;
  e.access = a;
  return e;
}

class FaultBatchTest : public ::testing::Test {
 protected:
  FaultBatchTest() : fb_(buf_cfg()) {}
  FaultBuffer fb_;
  CostModel cm_;
};

TEST_F(FaultBatchTest, EmptyBufferEmptyBatch) {
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(t, 1000u);  // no fetch cost for nothing
}

TEST_F(FaultBatchTest, FetchesUpToBatchSize) {
  for (VirtPage p = 0; p < 300; ++p) fb_.push(entry(p), 0);
  SimTime t = 10000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.fetched, 256u);
  EXPECT_EQ(fb_.size(), 44u);
}

TEST_F(FaultBatchTest, FetchCostsAdvanceCursor) {
  for (VirtPage p = 0; p < 10; ++p) fb_.push(entry(p), 0);
  SimTime t = 10000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.fetched, 10u);
  // 10 fetches + 10 * (sort + bin); entries were ready (pushed at t=0).
  SimDuration expected = 10 * cm_.fetch_per_fault +
                         10 * (cm_.sort_per_fault + cm_.bin_per_fault);
  EXPECT_EQ(t, 10000u + expected);
}

TEST_F(FaultBatchTest, PollsNotReadyEntries) {
  fb_.push(entry(1), 5000);  // ready at 5300
  SimTime t = 5000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.fetched, 1u);
  EXPECT_GE(b.polls, 1u);
  EXPECT_GE(t, 5300u);  // waited for readiness
}

TEST_F(FaultBatchTest, BinsByBlockSorted) {
  fb_.push(entry(kPagesPerBlock + 5), 0);  // block 1
  fb_.push(entry(3), 0);                   // block 0
  fb_.push(entry(kPagesPerBlock + 9), 0);  // block 1
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  ASSERT_EQ(b.bins.size(), 2u);
  EXPECT_EQ(b.bins[0].block, 0u);
  EXPECT_EQ(b.bins[1].block, 1u);
  EXPECT_TRUE(b.bins[0].faulted.test(3));
  EXPECT_TRUE(b.bins[1].faulted.test(5));
  EXPECT_TRUE(b.bins[1].faulted.test(9));
  EXPECT_EQ(b.bins[1].fault_entries, 2u);
}

TEST_F(FaultBatchTest, DeduplicatesSamePage) {
  fb_.push(entry(7), 0);
  fb_.push(entry(7), 0);
  fb_.push(entry(7), 0);
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.fetched, 3u);
  EXPECT_EQ(b.duplicates, 2u);
  ASSERT_EQ(b.bins.size(), 1u);
  EXPECT_EQ(b.bins[0].faulted.count(), 1u);
  EXPECT_EQ(b.bins[0].fault_entries, 3u);
}

TEST_F(FaultBatchTest, WriteAccessDominates) {
  fb_.push(entry(1, FaultAccessType::Read), 0);
  fb_.push(entry(2, FaultAccessType::Write), 0);
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  ASSERT_EQ(b.bins.size(), 1u);
  EXPECT_EQ(b.bins[0].strongest_access, FaultAccessType::Write);
}

TEST_F(FaultBatchTest, ReadThenWriteDuplicateUpgradesAccess) {
  // Regression: the dedup skip used to run before the access-type check, so
  // a Read-then-Write pair on one page kept the bin at Read and a later
  // read-mostly duplication would wrongly keep a stale copy.
  fb_.push(entry(7, FaultAccessType::Read), 0);
  fb_.push(entry(7, FaultAccessType::Write), 0);
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.duplicates, 1u);
  ASSERT_EQ(b.bins.size(), 1u);
  EXPECT_EQ(b.bins[0].strongest_access, FaultAccessType::Write);
}

TEST_F(FaultBatchTest, WriteThenReadDuplicateStaysWrite) {
  // Both same-page orders must upgrade — the sort is by page only, so the
  // relative order of equal-page entries is unspecified.
  fb_.push(entry(7, FaultAccessType::Write), 0);
  fb_.push(entry(7, FaultAccessType::Read), 0);
  fb_.push(entry(7, FaultAccessType::Read), 0);
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t);
  EXPECT_EQ(b.duplicates, 2u);
  ASSERT_EQ(b.bins.size(), 1u);
  EXPECT_EQ(b.bins[0].strongest_access, FaultAccessType::Write);
}

TEST_F(FaultBatchTest, QueueLatencySampledPerFetchedEntry) {
  fb_.push(entry(1), 100);
  fb_.push(entry(2), 200);
  LogHistogram lat;
  SimTime t = 10000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t, FetchPolicy::PollReady, &lat);
  EXPECT_EQ(b.fetched, 2u);
  EXPECT_EQ(lat.count(), 2u);
  EXPECT_EQ(b.latency_clamps, 0u);
}

TEST_F(FaultBatchTest, ClampsQueueLatencyFromFutureRaiseTime) {
  // Regression: an entry whose (corrupted) raise time is past the fetch
  // cursor used to be silently skipped, undercounting the histogram. It now
  // contributes a zero sample and is counted in latency_clamps.
  FaultEntry e = entry(3);
  e.raised_at = 1'000'000;  // far past where the cursor will be
  e.ready_at = 0;
  ASSERT_TRUE(fb_.push_preserving_timestamps(e));
  fb_.push(entry(4), 0);
  LogHistogram lat;
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t, FetchPolicy::PollReady, &lat);
  EXPECT_EQ(b.fetched, 2u);
  EXPECT_EQ(lat.count(), 2u);  // the clamped sample is recorded, not dropped
  EXPECT_EQ(b.latency_clamps, 1u);
}

TEST_F(FaultBatchTest, StopAtNotReadyClosesBatchEarly) {
  fb_.push(entry(1), 0);     // ready at 300
  fb_.push(entry(2), 5000);  // ready at 5300
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t,
                               FetchPolicy::StopAtNotReady);
  EXPECT_EQ(b.fetched, 1u);       // the laggard stays for the next pass
  EXPECT_EQ(fb_.size(), 1u);
  EXPECT_EQ(b.polls, 0u);
  EXPECT_LT(t, 5000u);            // did not wait for the laggard
}

TEST_F(FaultBatchTest, StopAtNotReadyStillPollsLeadingLaggard) {
  // An empty batch would make no progress: the first entry is polled even
  // under StopAtNotReady.
  fb_.push(entry(1), 5000);  // ready at 5300
  SimTime t = 5000;
  auto b = Preprocessor::fetch(fb_, 256, cm_, t,
                               FetchPolicy::StopAtNotReady);
  EXPECT_EQ(b.fetched, 1u);
  EXPECT_GE(t, 5300u);
}

// Reference binning: the std::map-based implementation the sort-then-group
// code replaced. Takes the entries the fetch will consume (FIFO order) and
// reproduces sort -> map-bin -> upgrade-before-dedup exactly.
struct RefBatch {
  std::vector<FaultBatch::Bin> bins;
  std::uint32_t duplicates = 0;
};

RefBatch ref_bin(std::vector<FaultEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const FaultEntry& a, const FaultEntry& b) {
              return a.page < b.page;
            });
  RefBatch out;
  std::map<VaBlockId, FaultBatch::Bin> bins;
  VirtPage prev_page = ~VirtPage{0};
  for (const FaultEntry& e : entries) {
    FaultBatch::Bin& bin = bins[e.block];
    bin.block = e.block;
    ++bin.fault_entries;
    if (e.access == FaultAccessType::Write) {
      bin.strongest_access = FaultAccessType::Write;
    }
    if (e.page == prev_page) {
      ++out.duplicates;
      continue;
    }
    prev_page = e.page;
    bin.faulted.set(page_in_block(e.page));
  }
  for (auto& [block, bin] : bins) out.bins.push_back(bin);
  return out;
}

void expect_bins_equal(const FaultBatch& got, const RefBatch& want) {
  EXPECT_EQ(got.duplicates, want.duplicates);
  ASSERT_EQ(got.bins.size(), want.bins.size());
  for (std::size_t i = 0; i < want.bins.size(); ++i) {
    const auto& g = got.bins[i];
    const auto& w = want.bins[i];
    EXPECT_EQ(g.block, w.block) << "bin " << i;
    EXPECT_EQ(g.fault_entries, w.fault_entries) << "bin " << i;
    EXPECT_EQ(g.strongest_access, w.strongest_access) << "bin " << i;
    EXPECT_EQ(g.faulted, w.faulted) << "bin " << i;
  }
}

TEST_F(FaultBatchTest, SortThenGroupMatchesMapReferenceOnRandomStreams) {
  // Property test for the sort-then-group binning: on arbitrary fault
  // streams (duplicates, mixed access types, blocks in any order) the bins
  // must be identical — contents, emission order, and strongest-access — to
  // the old std::map reference.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    FaultBuffer fb(buf_cfg());
    const std::uint32_t n_blocks = 1 + static_cast<std::uint32_t>(
        rng.next_below(6));
    const std::uint32_t n_entries = 1 + static_cast<std::uint32_t>(
        rng.next_below(200));
    std::vector<FaultEntry> pushed;
    for (std::uint32_t i = 0; i < n_entries; ++i) {
      const VirtPage block = rng.next_below(n_blocks);
      // Small in-block spread makes same-page duplicates common.
      const VirtPage p = block * kPagesPerBlock + rng.next_below(40);
      FaultEntry e = entry(p, rng.next_below(4) == 0 ? FaultAccessType::Write
                                                     : FaultAccessType::Read);
      ASSERT_TRUE(fb.push(e, 0));
      pushed.push_back(e);
    }
    SimTime t = 100000;
    auto b = Preprocessor::fetch(fb, 256, cm_, t);
    ASSERT_EQ(b.fetched, n_entries);
    expect_bins_equal(b, ref_bin(pushed));
  }
}

TEST_F(FaultBatchTest, SortThenGroupMatchesReferenceWithPartialFetch) {
  // When batch_size < buffer depth, only the first batch_size entries (FIFO
  // pop order) are binned; the reference must see the same prefix.
  Rng rng(88);
  FaultBuffer fb(buf_cfg());
  std::vector<FaultEntry> pushed;
  for (std::uint32_t i = 0; i < 150; ++i) {
    const VirtPage p = rng.next_below(4) * kPagesPerBlock + rng.next_below(64);
    FaultEntry e = entry(p, rng.next_below(3) == 0 ? FaultAccessType::Write
                                                   : FaultAccessType::Read);
    ASSERT_TRUE(fb.push(e, 0));
    pushed.push_back(e);
  }
  SimTime t = 100000;
  auto b = Preprocessor::fetch(fb, 64, cm_, t);
  ASSERT_EQ(b.fetched, 64u);
  pushed.resize(64);
  expect_bins_equal(b, ref_bin(pushed));
}

TEST_F(FaultBatchTest, BinsEmittedInAscendingBlockOrder) {
  // Strongest invariant downstream servicing relies on: bins sorted by block.
  Rng rng(99);
  FaultBuffer fb(buf_cfg());
  for (std::uint32_t i = 0; i < 120; ++i) {
    const VirtPage p =
        rng.next_below(10) * kPagesPerBlock + rng.next_below(kPagesPerBlock);
    ASSERT_TRUE(fb.push(entry(p), 0));
  }
  SimTime t = 100000;
  auto b = Preprocessor::fetch(fb, 256, cm_, t);
  for (std::size_t i = 1; i < b.bins.size(); ++i) {
    EXPECT_LT(b.bins[i - 1].block, b.bins[i].block);
  }
}

TEST_F(FaultBatchTest, SmallBatchSizeRespected) {
  for (VirtPage p = 0; p < 10; ++p) fb_.push(entry(p), 0);
  SimTime t = 1000;
  auto b = Preprocessor::fetch(fb_, 4, cm_, t);
  EXPECT_EQ(b.fetched, 4u);
  EXPECT_EQ(fb_.size(), 6u);
}

TEST_F(FaultBatchTest, ShardedFetchMatchesSerialForAnyLaneCount) {
  // The lane pipeline's sharded sort/bin must be indistinguishable from the
  // serial pass: identical bins (contents and order), identical duplicate
  // count, and an identical time cursor (the charges are count-based).
  Rng rng(123);
  ThreadPool pool(3);
  for (std::uint32_t lanes : {2u, 3u, 4u, 8u}) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::uint32_t n_entries =
          lanes * Preprocessor::kShardGrain +
          static_cast<std::uint32_t>(rng.next_below(100));
      FaultBuffer fb_serial(buf_cfg());
      FaultBuffer fb_sharded(buf_cfg());
      for (std::uint32_t i = 0; i < n_entries; ++i) {
        const VirtPage block = rng.next_below(7);
        const VirtPage p = block * kPagesPerBlock + rng.next_below(48);
        FaultEntry e =
            entry(p, rng.next_below(4) == 0 ? FaultAccessType::Write
                                            : FaultAccessType::Read);
        ASSERT_TRUE(fb_serial.push(e, 0));
        ASSERT_TRUE(fb_sharded.push(e, 0));
      }
      SimTime t_serial = 100000;
      SimTime t_sharded = 100000;
      auto serial = Preprocessor::fetch(fb_serial, 1024, cm_, t_serial);
      auto sharded =
          Preprocessor::fetch(fb_sharded, 1024, cm_, t_sharded,
                              FetchPolicy::PollReady, nullptr, nullptr,
                              &pool, lanes);
      ASSERT_TRUE(sharded.sharded) << "lanes=" << lanes;
      EXPECT_FALSE(serial.sharded);
      EXPECT_EQ(t_serial, t_sharded) << "lanes=" << lanes;
      EXPECT_EQ(serial.fetched, sharded.fetched);
      EXPECT_EQ(serial.polls, sharded.polls);
      ASSERT_EQ(serial.bins.size(), sharded.bins.size())
          << "lanes=" << lanes;
      EXPECT_EQ(serial.duplicates, sharded.duplicates) << "lanes=" << lanes;
      for (std::size_t i = 0; i < serial.bins.size(); ++i) {
        EXPECT_EQ(serial.bins[i].block, sharded.bins[i].block);
        EXPECT_EQ(serial.bins[i].fault_entries, sharded.bins[i].fault_entries);
        EXPECT_EQ(serial.bins[i].strongest_access,
                  sharded.bins[i].strongest_access);
        EXPECT_EQ(serial.bins[i].faulted, sharded.bins[i].faulted);
      }
    }
  }
}

TEST_F(FaultBatchTest, ShardBinsCountsCrossLaneDuplicates) {
  // Duplicate runs split across lane boundaries are the case per-lane
  // counting would get wrong; the union-derived count must not.
  ThreadPool pool(3);
  std::vector<FaultEntry> entries(300, entry(7));
  entries[200] = entry(7, FaultAccessType::Write);
  FaultBatch batch;
  batch.fetched = 300;
  Preprocessor::shard_bins(entries, batch, pool, 4);
  ASSERT_EQ(batch.bins.size(), 1u);
  EXPECT_EQ(batch.bins[0].faulted.count(), 1u);
  EXPECT_EQ(batch.bins[0].fault_entries, 300u);
  EXPECT_EQ(batch.bins[0].strongest_access, FaultAccessType::Write);
  EXPECT_EQ(batch.duplicates, 299u);
}

TEST_F(FaultBatchTest, SmallBatchStaysOnSerialPath) {
  // Below lanes * kShardGrain the serial grouping wins outright; fetch must
  // not shard it.
  ThreadPool pool(3);
  for (std::uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(fb_.push(entry(i), 0));
  }
  SimTime t = 100000;
  auto b = Preprocessor::fetch(fb_, 1024, cm_, t, FetchPolicy::PollReady,
                               nullptr, nullptr, &pool, 4);
  EXPECT_FALSE(b.sharded);
  EXPECT_EQ(b.fetched, 32u);
}

}  // namespace
}  // namespace uvmsim
