#include "gpu/fault_buffer.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

FaultBuffer::Config small_cfg() {
  FaultBuffer::Config c;
  c.capacity = 4;
  c.ready_lag = 300;
  return c;
}

FaultEntry entry(VirtPage p) {
  FaultEntry e;
  e.page = p;
  e.block = block_of_page(p);
  return e;
}

TEST(FaultBuffer, PushPopFifo) {
  FaultBuffer fb(small_cfg());
  EXPECT_TRUE(fb.push(entry(1), 100));
  EXPECT_TRUE(fb.push(entry(2), 200));
  auto a = fb.pop();
  auto b = fb.pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->page, 1u);
  EXPECT_EQ(b->page, 2u);
  EXPECT_FALSE(fb.pop().has_value());
}

TEST(FaultBuffer, TimestampsStamped) {
  FaultBuffer fb(small_cfg());
  fb.push(entry(1), 1000);
  auto e = fb.pop();
  EXPECT_EQ(e->raised_at, 1000u);
  EXPECT_EQ(e->ready_at, 1300u);
}

TEST(FaultBuffer, CapacityDrops) {
  FaultBuffer fb(small_cfg());
  for (VirtPage p = 0; p < 4; ++p) EXPECT_TRUE(fb.push(entry(p), 0));
  EXPECT_TRUE(fb.full());
  EXPECT_FALSE(fb.push(entry(99), 0));
  EXPECT_EQ(fb.total_dropped(), 1u);
  EXPECT_EQ(fb.size(), 4u);
}

TEST(FaultBuffer, FlushDiscardsAll) {
  FaultBuffer fb(small_cfg());
  for (VirtPage p = 0; p < 3; ++p) fb.push(entry(p), 0);
  EXPECT_EQ(fb.flush(), 3u);
  EXPECT_TRUE(fb.empty());
  EXPECT_EQ(fb.total_flushed(), 3u);
}

TEST(FaultBuffer, PeekDoesNotRemove) {
  FaultBuffer fb(small_cfg());
  fb.push(entry(7), 0);
  ASSERT_NE(fb.peek(), nullptr);
  EXPECT_EQ(fb.peek()->page, 7u);
  EXPECT_EQ(fb.size(), 1u);
}

TEST(FaultBuffer, PeekEmptyIsNull) {
  FaultBuffer fb(small_cfg());
  EXPECT_EQ(fb.peek(), nullptr);
}

TEST(FaultBuffer, StatsAccumulate) {
  FaultBuffer fb(small_cfg());
  for (VirtPage p = 0; p < 6; ++p) fb.push(entry(p), 0);  // 2 dropped
  EXPECT_EQ(fb.total_pushed(), 4u);
  EXPECT_EQ(fb.total_dropped(), 2u);
  EXPECT_EQ(fb.max_occupancy(), 4u);
  fb.pop();
  fb.push(entry(10), 0);
  EXPECT_EQ(fb.total_pushed(), 5u);
}

TEST(FaultBuffer, PushAfterFlushWorks) {
  FaultBuffer fb(small_cfg());
  for (VirtPage p = 0; p < 4; ++p) fb.push(entry(p), 0);
  fb.flush();
  EXPECT_TRUE(fb.push(entry(5), 0));
  EXPECT_EQ(fb.size(), 1u);
}

}  // namespace
}  // namespace uvmsim
