// Randomized property testing: generate random managed-memory workloads
// under random driver configurations and assert the system-wide invariants
// that must hold for ANY input. Each seed is deterministic, so a failure
// reproduces from its test name.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "sim/rng.h"
#include "workloads/workload.h"

namespace uvmsim {
namespace {

struct FuzzCase {
  SimConfig cfg;
  std::uint64_t total_bytes = 0;
};

/// Draws a random-but-valid configuration.
FuzzCase make_config(Rng& rng) {
  FuzzCase fc;
  SimConfig& cfg = fc.cfg;
  // GPU memory: 8..64 MiB.
  cfg.set_gpu_memory((8ull + rng.next_below(57)) << 20);
  cfg.seed = rng.next_u64();
  cfg.enable_fault_log = rng.next_below(2) == 0;

  cfg.driver.batch_size = static_cast<std::uint32_t>(1 + rng.next_below(512));
  cfg.driver.prefetch_enabled = rng.next_below(4) != 0;
  cfg.driver.prefetch_threshold =
      static_cast<std::uint32_t>(1 + rng.next_below(100));
  cfg.driver.big_page_upgrade = rng.next_below(2) == 0;
  cfg.driver.adaptive_prefetch = rng.next_below(4) == 0;
  cfg.driver.replay_policy = static_cast<ReplayPolicyKind>(rng.next_below(4));
  cfg.driver.fetch_policy = rng.next_below(2) == 0
                                ? FetchPolicy::PollReady
                                : FetchPolicy::StopAtNotReady;
  cfg.driver.eviction_policy = rng.next_below(3) == 0
                                   ? EvictionPolicyKind::AccessCounter
                                   : EvictionPolicyKind::Lru;
  cfg.driver.access_counter_migration = rng.next_below(4) == 0;
  cfg.access_counters.enabled =
      cfg.driver.eviction_policy == EvictionPolicyKind::AccessCounter ||
      cfg.driver.access_counter_migration;
  cfg.driver.pipelined_migrations = rng.next_below(3) == 0;

  cfg.driver.chunking.enabled = rng.next_below(4) != 0;
  static constexpr double kSplits[] = {0.0, 1.0 / 16, 1.0 / 4, 2.0};
  cfg.driver.chunking.split_watermark = kSplits[rng.next_below(4)];
  cfg.driver.chunking.fine_watermark =
      cfg.driver.chunking.split_watermark *
      (rng.next_below(2) == 0 ? 1.0 : 0.25);
  cfg.driver.chunking.coalesce = rng.next_below(2) == 0;
  cfg.pma.slab_chunks = static_cast<std::uint32_t>(1 + rng.next_below(32));

  cfg.fault_buffer.capacity =
      static_cast<std::uint32_t>(16 + rng.next_below(4096));
  cfg.gpu.num_sms = static_cast<std::uint32_t>(1 + rng.next_below(16));
  cfg.gpu.max_blocks_per_sm = static_cast<std::uint32_t>(1 + rng.next_below(4));
  cfg.gpu.utlb_fault_slots = static_cast<std::uint32_t>(1 + rng.next_below(32));
  if (rng.next_below(4) == 0) {
    cfg.set_host_page_size(64 << 10);  // occasional Power9 mode
  }
  if (rng.next_below(4) == 0) {
    cfg.driver.thrashing.enabled = true;
    cfg.driver.thrashing.mitigation =
        static_cast<ThrashMitigation>(rng.next_below(3));
  }
  // Half the cases run under hazard injection; every invariant below must
  // survive injected DMA failures, fault-buffer corruption, transient
  // allocation failures, and lost notifications. DeterministicReplay then
  // doubles as the hazard-reproducibility check.
  if (rng.next_below(2) == 0) {
    cfg.hazards.dma_fail_rate = 0.3 * rng.next_double();
    cfg.hazards.fb_corrupt_rate = 0.3 * rng.next_double();
    cfg.hazards.pma_fail_rate = 0.3 * rng.next_double();
    cfg.hazards.ac_drop_rate = 0.3 * rng.next_double();
  }
  return fc;
}

/// Builds a random workload on `sim`: 1-4 ranges, 1-3 kernels of random
/// warps mixing contiguous runs, scattered sets, and cross-range accesses.
/// Total footprint can under- or oversubscribe the GPU (bounded at ~160 %).
std::uint64_t build_random_workload(Simulator& sim, Rng& rng) {
  std::uint64_t gpu = sim.config().gpu_memory();
  std::size_t num_ranges = 1 + rng.next_below(4);
  std::uint64_t budget = gpu / 2 + rng.next_below(gpu + gpu / 8);
  std::uint64_t total = 0;

  struct R {
    VirtPage first;
    std::uint64_t pages;
    RangeId id;
  };
  std::vector<R> ranges;
  for (std::size_t i = 0; i < num_ranges; ++i) {
    std::uint64_t bytes = std::max<std::uint64_t>(
        budget / num_ranges / 2 + rng.next_below(budget / num_ranges + 1),
        kPageSize);
    bool populated = rng.next_below(4) != 0;
    RangeId id =
        sim.malloc_managed(bytes, "fuzz" + std::to_string(i), populated);
    const VaRange& vr = sim.address_space().range(id);
    ranges.push_back(R{vr.first_page, vr.num_pages, id});
    total += bytes;
    if (rng.next_below(6) == 0) {
      MemAdvise a;
      switch (rng.next_below(3)) {
        case 0: a.read_mostly = true; break;
        case 1: a.remote_map = true; break;
        default: a.preferred_location_gpu = true; break;
      }
      sim.mem_advise(id, a);
    }
  }

  std::size_t num_kernels = 1 + rng.next_below(3);
  for (std::size_t k = 0; k < num_kernels; ++k) {
    GridBuilder g("fuzz_kernel" + std::to_string(k));
    std::size_t warps = 4 + rng.next_below(64);
    std::vector<VirtPage> pages;
    for (std::size_t w = 0; w < warps; ++w) {
      AccessStream& s = g.new_warp();
      std::size_t records = 1 + rng.next_below(6);
      for (std::size_t rec = 0; rec < records; ++rec) {
        const R& r = ranges[rng.next_below(ranges.size())];
        bool write = rng.next_below(2) == 0;
        auto compute = static_cast<std::uint32_t>(rng.next_below(2000));
        if (rng.next_below(2) == 0) {
          // Contiguous run.
          std::uint64_t len = 1 + rng.next_below(32);
          len = std::min(len, r.pages);
          std::uint64_t start = rng.next_below(r.pages - len + 1);
          s.add_run(r.first + start, static_cast<std::uint32_t>(len), write,
                    compute);
        } else {
          // Scattered set.
          pages.clear();
          std::uint64_t n = 1 + rng.next_below(16);
          for (std::uint64_t i = 0; i < n; ++i) {
            pages.push_back(r.first + rng.next_below(r.pages));
          }
          s.add(pages, write, compute);
        }
      }
    }
    sim.launch(g.build(1.0), static_cast<std::uint32_t>(rng.next_below(2)));
  }
  return total;
}

class FuzzInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzInvariants, SystemInvariantsHold) {
  Rng rng(GetParam());
  FuzzCase fc = make_config(rng);

  Simulator sim(fc.cfg);
  build_random_workload(sim, rng);
  RunResult r = sim.run();  // throws on deadlock -> test failure

  // Residency within physical capacity (remote mappings use none).
  EXPECT_LE(r.resident_pages_at_end * kPageSize, fc.cfg.gpu_memory());

  // PMA accounting consistent with block backing: every chunk-tree byte is
  // a PMA byte and vice versa, at any chunk granularity mix.
  std::uint64_t backed_bytes = 0;
  for (std::size_t b = 0; b < sim.address_space().num_blocks(); ++b) {
    backed_bytes += sim.address_space().block(b).backing.backed_bytes();
  }
  EXPECT_EQ(backed_bytes, sim.pma().bytes_in_use());

  // Fault conservation.
  EXPECT_EQ(r.counters.faults_fetched,
            r.counters.faults_serviced + r.counters.duplicate_faults +
                r.counters.stale_faults);

  // Interconnect byte accounting: H2D = migrations; D2H = eviction
  // writeback + CPU-fault migrations.
  EXPECT_EQ(r.bytes_h2d, r.counters.pages_migrated_h2d * kPageSize);
  EXPECT_EQ(r.bytes_d2h,
            (r.counters.pages_evicted + r.counters.cpu_faults_serviced) *
                kPageSize);

  // Every page is in a consistent location state: a GPU-resident page
  // with a valid host copy must be a read-duplicate.
  for (std::size_t b = 0; b < sim.address_space().num_blocks(); ++b) {
    const VaBlock& blk = sim.address_space().block(b);
    PageMask both = blk.gpu_resident & blk.cpu_resident;
    EXPECT_TRUE(both.and_not(blk.read_duplicated).none())
        << "block " << b << " has dual-resident non-duplicated pages";
    // Remote-mapped pages hold no GPU residency.
    EXPECT_TRUE((blk.remote_mapped & blk.gpu_resident).none());
  }

  // Latency sample counts line up with counters.
  EXPECT_EQ(r.fault_queue_latency.count(), r.counters.faults_fetched);
}

TEST_P(FuzzInvariants, DeterministicReplay) {
  auto run_once = [&] {
    Rng rng(GetParam());
    FuzzCase fc = make_config(rng);
    Simulator sim(fc.cfg);
    build_random_workload(sim, rng);
    return sim.run();
  };
  RunResult a = run_once();
  RunResult b = run_once();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.counters.faults_fetched, b.counters.faults_fetched);
  EXPECT_EQ(a.counters.evictions, b.counters.evictions);
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace uvmsim
