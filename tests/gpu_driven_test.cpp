// GpuDrivenBackend behaviour: per-fault GPU-side resolution (GPUVM model).
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/random_access.h"
#include "workloads/regular.h"

namespace uvmsim {
namespace {

SimConfig gpu_cfg(std::uint64_t gpu_bytes = 32ull << 20) {
  SimConfig cfg;
  cfg.set_gpu_memory(gpu_bytes);
  cfg.driver.backend = ServicingBackendKind::GpuDriven;
  return cfg;
}

TEST(GpuDriven, CompletesWithPerFaultResolution) {
  Simulator sim(gpu_cfg());
  RegularTouch wl(8ull << 20);  // 2048 pages, fits in GPU memory
  wl.setup(sim);
  RunResult r = sim.run();

  EXPECT_GT(r.total_kernel_time(), 0u);
  EXPECT_EQ(r.resident_pages_at_end, 2048u);
  // Every page crossed the link exactly once, as a page-granular RDMA read
  // — pipelined wire transactions, so the bulk-transfer counter stays zero
  // and the bytes land in the zero-copy accounting.
  EXPECT_EQ(r.counters.pages_migrated_h2d, 2048u);
  EXPECT_EQ(r.counters.gpu_page_fetches, 2048u);
  EXPECT_EQ(r.bytes_h2d, 0u);
  EXPECT_EQ(r.bytes_zero_copy, 8ull << 20);

  // No batch machinery ran: no batches, no polls, no prefetch.
  EXPECT_GT(r.counters.gpu_resolved_faults, 0u);
  EXPECT_EQ(r.counters.batches, 0u);
  EXPECT_EQ(r.counters.polls, 0u);
  EXPECT_EQ(r.counters.pages_prefetched, 0u);

  // Fault conservation on the per-fault path: every popped entry is either
  // resolved or stale (duplicates surface as stale, never as a separate
  // preprocessing count).
  EXPECT_EQ(r.counters.faults_fetched,
            r.counters.faults_serviced + r.counters.stale_faults);
  EXPECT_EQ(r.counters.gpu_resolved_faults, r.counters.faults_serviced);
}

TEST(GpuDriven, DeterministicForSameSeed) {
  auto run_once = [] {
    Simulator sim(gpu_cfg());
    RandomTouch wl(4ull << 20);
    wl.setup(sim);
    return sim.run();
  };
  RunResult a = run_once();
  RunResult b = run_once();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.counters.faults_fetched, b.counters.faults_fetched);
  EXPECT_EQ(a.counters.gpu_queue_stalls, b.counters.gpu_queue_stalls);
  EXPECT_EQ(a.counters.gpu_queue_stall_ns, b.counters.gpu_queue_stall_ns);
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
  for (std::size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_EQ(a.fault_log[i].page, b.fault_log[i].page);
    EXPECT_EQ(a.fault_log[i].time, b.fault_log[i].time);
  }
}

TEST(GpuDriven, BoundedQueueContention) {
  auto run_with_slots = [](std::uint32_t slots) {
    SimConfig cfg = gpu_cfg();
    cfg.costs.gpu_driven.queue_slots = slots;
    Simulator sim(cfg);
    RegularTouch wl(8ull << 20);
    wl.setup(sim);
    return sim.run();
  };
  RunResult narrow = run_with_slots(1);
  RunResult wide = run_with_slots(256);

  // A single resolution slot serializes every fault in a drain; a wide
  // queue absorbs the burst.
  EXPECT_GT(narrow.counters.gpu_queue_stalls, wide.counters.gpu_queue_stalls);
  EXPECT_GT(narrow.counters.gpu_queue_stall_ns,
            wide.counters.gpu_queue_stall_ns);
  EXPECT_GT(narrow.total_kernel_time(), wide.total_kernel_time());
}

TEST(GpuDriven, DegradesToRemoteMappingWithoutVictims) {
  // One 2 MB block of demand against a 1 MB GPU: once memory is exhausted
  // the only backed block is the faulting block itself, so no eviction
  // victim is ever eligible and the overflow pages must fall back to
  // host-pinned remote mappings instead of failing the run.
  Simulator sim(gpu_cfg(1ull << 20));
  RegularTouch wl(2ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();

  EXPECT_GT(r.counters.gpu_remote_fallback_pages, 0u);
  EXPECT_GT(r.counters.eviction_victim_unavailable, 0u);
  // Remote-mapped pages never consume GPU memory.
  EXPECT_LE(r.resident_pages_at_end, (1ull << 20) / kPageSize);
  EXPECT_GT(r.total_kernel_time(), 0u);
}

TEST(GpuDriven, NeverFetchesMuchMoreThanFootprint) {
  // The driver path's 2 MB allocation amplification cannot happen here:
  // page-granular fetches move one footprint of data plus only the re-fetch
  // of pages that were evicted and then touched again, even when scattered
  // accesses oversubscribe the GPU. Allow 5% for that thrash re-fetch — the
  // driver path amplifies by whole multiples under the same workload.
  SimConfig cfg = gpu_cfg(16ull << 20);
  Simulator sim(cfg);
  RandomTouch wl(32ull << 20);  // 2x oversubscribed
  wl.setup(sim);
  RunResult r = sim.run();

  EXPECT_GT(r.counters.gpu_resolved_faults, 0u);
  EXPECT_LE(r.bytes_h2d + r.counters.gpu_page_fetches * kPageSize,
            r.total_bytes + r.total_bytes / 20);
}

TEST(GpuDriven, BackendSelectionIsVisible) {
  Simulator sim(gpu_cfg());
  EXPECT_EQ(sim.driver().config().backend, ServicingBackendKind::GpuDriven);
  EXPECT_EQ(to_string(ServicingBackendKind::GpuDriven),
            std::string("gpu"));
  EXPECT_EQ(to_string(ServicingBackendKind::DriverCentric),
            std::string("driver"));
}

}  // namespace
}  // namespace uvmsim
