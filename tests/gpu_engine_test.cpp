// GPU engine tests with a minimal "instant driver" stub: on interrupt it
// drains the fault buffer, maps every faulted page, and issues a replay —
// isolating warp/fault semantics from driver policy.
#include "gpu/gpu_engine.h"

#include <gtest/gtest.h>

#include "mem/page_table.h"

namespace uvmsim {
namespace {

class GpuEngineTest : public ::testing::Test {
 protected:
  GpuEngineTest()
      : pt_(as_),
        fb_(FaultBuffer::Config{}),
        ac_(AccessCounters::Config{}),
        gpu_(cfg(), eq_, as_, pt_, fb_, ac_) {
    rid_ = as_.create_range(8ull << 20, "data");  // 4 blocks
  }

  static GpuEngine::Config cfg() {
    GpuEngine::Config c;
    c.num_sms = 4;
    c.max_blocks_per_sm = 2;
    c.utlb_fault_slots = 8;  // small slots so throttling is observable
    return c;
  }

  /// Installs the instant-service stub driver.
  void install_instant_driver() {
    gpu_.set_interrupt_handler([this] {
      if (service_scheduled_) return;
      service_scheduled_ = true;
      eq_.schedule_in(1000, [this] {
        service_scheduled_ = false;
        while (auto e = fb_.pop()) {
          PageMask m;
          m.set(page_in_block(e->page));
          pt_.map_pages(as_.block(e->block), m);
          ++serviced_;
        }
        gpu_.replay();
      });
    });
  }

  KernelSpec touch_kernel(std::uint64_t pages, std::uint32_t per_warp = 32) {
    KernelSpec k;
    k.name = "touch";
    VirtPage first = as_.range(rid_).first_page;
    for (std::uint64_t p = 0; p < pages; p += per_warp) {
      if (k.blocks.empty() || k.blocks.back().warps.size() == 8) {
        k.blocks.emplace_back();
      }
      AccessStream s;
      auto count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(per_warp, pages - p));
      s.add_run(first + p, count, true, 500);
      k.blocks.back().warps.push_back(std::move(s));
    }
    return k;
  }

  EventQueue eq_;
  AddressSpace as_;
  PageTable pt_;
  FaultBuffer fb_;
  AccessCounters ac_;
  GpuEngine gpu_;
  RangeId rid_ = 0;
  bool service_scheduled_ = false;
  std::uint64_t serviced_ = 0;
};

TEST_F(GpuEngineTest, ResidentKernelCompletesWithoutFaults) {
  for (std::size_t b = 0; b < as_.num_blocks(); ++b) {
    as_.block(b).gpu_resident.set_range(0, as_.block(b).num_pages);
  }
  KernelSpec k = touch_kernel(256);
  bool done = false;
  gpu_.launch(&k, [&] { done = true; });
  eq_.run();
  EXPECT_TRUE(done);
  ASSERT_EQ(gpu_.kernel_stats().size(), 1u);
  EXPECT_EQ(gpu_.kernel_stats()[0].faults_raised, 0u);
  EXPECT_EQ(gpu_.kernel_stats()[0].page_touches, 256u);
  EXPECT_GT(gpu_.kernel_stats()[0].completed_at, 0u);
}

TEST_F(GpuEngineTest, FaultingKernelStallsUntilReplay) {
  install_instant_driver();
  KernelSpec k = touch_kernel(64);
  bool done = false;
  gpu_.launch(&k, [&] { done = true; });
  eq_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(serviced_, 64u);
  const auto& ks = gpu_.kernel_stats()[0];
  EXPECT_EQ(ks.faults_raised, 64u);
  EXPECT_GT(ks.stall_ns, 0u);
  EXPECT_GE(ks.replays_seen, 1u);
}

TEST_F(GpuEngineTest, EveryTouchedPageEndsResident) {
  install_instant_driver();
  KernelSpec k = touch_kernel(300);
  gpu_.launch(&k);
  eq_.run();
  for (VirtPage p = 0; p < 300; ++p) EXPECT_TRUE(pt_.translate(p));
}

TEST_F(GpuEngineTest, WritesMarkDirtyAndPopulated) {
  install_instant_driver();
  KernelSpec k = touch_kernel(32);
  gpu_.launch(&k);
  eq_.run();
  EXPECT_EQ(as_.block(0).dirty.count_range(0, 32), 32u);
}

TEST_F(GpuEngineTest, PendingFaultCoalescing) {
  install_instant_driver();
  // Two warps touching the SAME page: only one buffer entry per replay
  // round (µTLB coalescing), the other warp parks silently.
  KernelSpec k;
  k.name = "dup";
  k.blocks.emplace_back();
  for (int w = 0; w < 2; ++w) {
    AccessStream s;
    s.add_run(as_.range(rid_).first_page, 1, false, 100);
    k.blocks.back().warps.push_back(std::move(s));
  }
  bool done = false;
  gpu_.launch(&k, [&] { done = true; });
  eq_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(gpu_.kernel_stats()[0].faults_raised, 1u);
  EXPECT_EQ(gpu_.faults_coalesced(), 1u);
}

TEST_F(GpuEngineTest, FaultSlotThrottling) {
  install_instant_driver();
  // One SM (4 SMs but one block), 8 fault slots, a warp touching 32
  // distinct pages: only 8 entries surface per replay round.
  KernelSpec k = touch_kernel(32);
  k.blocks.resize(1);
  gpu_.launch(&k);
  eq_.run();
  EXPECT_GT(gpu_.faults_throttled(), 0u);
  // All pages still end up resident (liveness through replays).
  for (VirtPage p = 0; p < 32; ++p) EXPECT_TRUE(pt_.translate(p));
}

TEST_F(GpuEngineTest, KernelsRunSequentially) {
  install_instant_driver();
  KernelSpec k1 = touch_kernel(32);
  KernelSpec k2 = touch_kernel(32);
  std::vector<int> order;
  gpu_.launch(&k1, [&] { order.push_back(1); });
  gpu_.launch(&k2, [&] { order.push_back(2); });
  eq_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(gpu_.kernel_stats().size(), 2u);
  EXPECT_LE(gpu_.kernel_stats()[0].completed_at,
            gpu_.kernel_stats()[1].launched_at);
}

TEST_F(GpuEngineTest, SecondKernelHitsWarmPages) {
  install_instant_driver();
  KernelSpec k1 = touch_kernel(64);
  KernelSpec k2 = touch_kernel(64);
  gpu_.launch(&k1);
  gpu_.launch(&k2);
  eq_.run();
  EXPECT_GT(gpu_.kernel_stats()[0].faults_raised, 0u);
  EXPECT_EQ(gpu_.kernel_stats()[1].faults_raised, 0u);
  // Warm kernel is faster (both pay launch overhead, only k1 pays faults).
  EXPECT_LT(gpu_.kernel_stats()[1].duration(),
            gpu_.kernel_stats()[0].duration());
}

TEST_F(GpuEngineTest, UtlbHitsAccumulate) {
  for (std::size_t b = 0; b < as_.num_blocks(); ++b) {
    as_.block(b).gpu_resident.set_range(0, as_.block(b).num_pages);
  }
  // Two records touching the same page: second access hits the µTLB.
  KernelSpec k;
  k.name = "hit";
  k.blocks.emplace_back();
  AccessStream s;
  s.add_run(0, 1, false, 100);
  s.add_run(0, 1, false, 100);
  k.blocks.back().warps.push_back(std::move(s));
  gpu_.launch(&k);
  eq_.run();
  EXPECT_GE(gpu_.utlb_hits(), 1u);
  EXPECT_GE(gpu_.utlb_misses(), 1u);
}

TEST_F(GpuEngineTest, InvalidateTlbsForcesWalks) {
  for (std::size_t b = 0; b < as_.num_blocks(); ++b) {
    as_.block(b).gpu_resident.set_range(0, as_.block(b).num_pages);
  }
  KernelSpec k = touch_kernel(32);
  gpu_.launch(&k);
  eq_.run();
  auto misses_before = gpu_.utlb_misses();
  gpu_.invalidate_tlbs();
  KernelSpec k2 = touch_kernel(32);
  gpu_.launch(&k2);
  eq_.run();
  EXPECT_GT(gpu_.utlb_misses(), misses_before);
}

TEST_F(GpuEngineTest, EmptyKernelThrows) {
  KernelSpec k;
  EXPECT_THROW(gpu_.launch(&k), std::invalid_argument);
  EXPECT_THROW(gpu_.launch(nullptr), std::invalid_argument);
}

TEST_F(GpuEngineTest, ResidentAccessClearsPrefetchedUnused) {
  VaBlock& blk = as_.block(0);
  blk.gpu_resident.set_range(0, 32);
  blk.prefetched_unused.set_range(0, 32);
  KernelSpec k = touch_kernel(32);
  gpu_.launch(&k);
  eq_.run();
  EXPECT_TRUE(blk.prefetched_unused.none());
}

}  // namespace
}  // namespace uvmsim
