// Flexible allocation-granularity properties (paper §VI-B): the driver must
// uphold its invariants at every slice size, and finer slices must use GPU
// memory more efficiently for scattered access.
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulator.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

using Param = std::tuple<std::uint64_t /*granularity*/, std::string>;

class GranularityProperties : public ::testing::TestWithParam<Param> {};

TEST_P(GranularityProperties, InvariantsHoldOversubscribed) {
  auto [gran, name] = GetParam();
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  cfg.enable_fault_log = false;
  cfg.pma.chunk_bytes = gran;
  cfg.driver.alloc_granularity_bytes = gran;

  Simulator sim(cfg);
  auto wl = make_workload(name, 24ull << 20);  // 150 %
  wl->setup(sim);
  RunResult r = sim.run();

  // Backing accounting at slice granularity.
  std::uint64_t backed = 0;
  for (std::size_t b = 0; b < sim.address_space().num_blocks(); ++b) {
    backed += sim.address_space().block(b).backed_slices.count();
  }
  EXPECT_EQ(backed, sim.pma().chunks_in_use());

  // Residency fits in the backing (pages only live in backed slices).
  EXPECT_LE(r.resident_pages_at_end * kPageSize,
            sim.pma().chunks_in_use() * gran);
  EXPECT_LE(sim.pma().chunks_in_use() * gran, cfg.gpu_memory());

  EXPECT_GT(r.counters.evictions, 0u);
  EXPECT_EQ(r.bytes_d2h, r.counters.pages_evicted * kPageSize);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GranularityProperties,
    ::testing::Combine(::testing::Values(64ull << 10, 256ull << 10,
                                         512ull << 10, 2048ull << 10),
                       ::testing::Values("regular", "random", "stream")),
    [](const auto& pinfo) {
      return std::get<1>(pinfo.param) + "_" +
             std::to_string(std::get<0>(pinfo.param) >> 10) + "k";
    });

TEST(Granularity, FineSlicesImproveMemoryEfficiencyForRandom) {
  auto run_gran = [](std::uint64_t gran) {
    SimConfig cfg;
    cfg.set_gpu_memory(16ull << 20);
    cfg.enable_fault_log = false;
    cfg.pma.chunk_bytes = gran;
    cfg.driver.alloc_granularity_bytes = gran;
    cfg.driver.prefetch_enabled = false;  // pure demand paging
    Simulator sim(cfg);
    auto wl = make_workload("random", 24ull << 20);
    wl->setup(sim);
    return sim.run();
  };
  RunResult fine = run_gran(64ull << 10);
  RunResult coarse = run_gran(2048ull << 10);
  // The 4 KB-demand/2 MB-allocation asymmetry (paper §V-A3): coarse slices
  // exhaust memory with mostly-empty blocks and churn evictions.
  EXPECT_LT(fine.total_kernel_time(), coarse.total_kernel_time());
  EXPECT_LT(fine.counters.pages_evicted, coarse.counters.pages_evicted);
}

TEST(Granularity, SliceEvictionOnlyEvictsThatSlice) {
  SimConfig cfg;
  cfg.set_gpu_memory(4ull << 20);  // 8 x 512 KiB slices
  cfg.pma.chunk_bytes = 512ull << 10;
  cfg.pma.slab_chunks = 1;
  cfg.driver.alloc_granularity_bytes = 512ull << 10;
  cfg.driver.prefetch_enabled = false;
  cfg.costs.driver_cold_start = 0;

  Simulator sim(cfg);
  RangeId rid = sim.malloc_managed(6ull << 20, "data");
  const VaRange& r = sim.address_space().range(rid);
  const std::uint32_t pps = cfg.driver.pages_per_slice();  // 128

  // Fault one page into 9 distinct slices (the 9th forces one eviction).
  auto fault_slice = [&](std::uint32_t s) {
    FaultEntry e;
    e.page = r.first_page + static_cast<VirtPage>(s) * pps;
    e.block = block_of_page(e.page);
    e.range = rid;
    ASSERT_TRUE(sim.fault_buffer().push(e, sim.event_queue().now()));
    sim.driver().on_gpu_interrupt();
    sim.event_queue().run();
  };
  for (std::uint32_t s = 0; s < 9; ++s) fault_slice(s);

  EXPECT_EQ(sim.driver().counters().evictions, 1u);
  // The victim (slice 0, LRU) lost exactly its one resident page; the other
  // slices of the same block kept theirs.
  const VaBlock& blk0 = sim.address_space().block(r.first_block);
  EXPECT_FALSE(blk0.gpu_resident.test(0));
  EXPECT_TRUE(blk0.gpu_resident.test(pps));  // slice 1 untouched
}

}  // namespace
}  // namespace uvmsim
