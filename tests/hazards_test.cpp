// Hazard injection and driver error recovery: injector determinism, retry
// and backoff accounting, watchdog / storm escalation, and the graceful
// no-victim degradation path.
#include <gtest/gtest.h>

#include "core/errors.h"
#include "core/simulator.h"
#include "sim/hazards.h"
#include "workloads/registry.h"
#include "workloads/regular.h"

namespace uvmsim {
namespace {

SimConfig base() {
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  cfg.enable_fault_log = false;
  return cfg;
}

RunResult run_regular(const SimConfig& cfg, std::uint64_t bytes) {
  Simulator sim(cfg);
  RegularTouch wl(bytes);
  wl.setup(sim);
  return sim.run();
}

RunResult run_named(const SimConfig& cfg, const std::string& name,
                    std::uint64_t bytes) {
  Simulator sim(cfg);
  auto wl = make_workload(name, bytes);
  wl->setup(sim);
  return sim.run();
}

// --- injector unit tests -------------------------------------------------

TEST(HazardInjector, ZeroRatesNeverFireAndNeverDraw) {
  HazardConfig hc;
  EXPECT_FALSE(hc.any());
  HazardInjector inj(hc);
  EXPECT_FALSE(inj.enabled());
  for (SimTime t = 0; t < 1000; ++t) {
    EXPECT_FALSE(inj.dma_copy_fails(t));
    EXPECT_EQ(inj.fb_corruption(t), FbCorruption::None);
    EXPECT_FALSE(inj.pma_transient_failure(t));
    EXPECT_FALSE(inj.access_counter_lost(t));
  }
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(HazardInjector, SameSeedSameDecisionSequence) {
  HazardConfig hc;
  hc.seed = 99;
  hc.dma_fail_rate = 0.3;
  hc.fb_corrupt_rate = 0.3;
  HazardInjector a(hc), b(hc);
  for (SimTime t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.dma_copy_fails(t), b.dma_copy_fails(t));
    EXPECT_EQ(a.fb_corruption(t), b.fb_corruption(t));
  }
  EXPECT_EQ(a.stats().dma_failures, b.stats().dma_failures);
  EXPECT_GT(a.stats().dma_failures, 0u);
  EXPECT_GT(a.stats().fb_dropped + a.stats().fb_duplicated +
                a.stats().fb_stalled,
            0u);
}

TEST(HazardInjector, ClassStreamsAreIndependent) {
  // Enabling a second hazard class must not perturb the first class's
  // decision sequence (each class forks its own Rng stream).
  HazardConfig solo;
  solo.seed = 7;
  solo.dma_fail_rate = 0.25;
  HazardConfig both = solo;
  both.pma_fail_rate = 0.25;
  HazardInjector a(solo), b(both);
  for (SimTime t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.dma_copy_fails(t), b.dma_copy_fails(t));
    (void)b.pma_transient_failure(t);
  }
}

TEST(HazardInjector, WindowGatesInjection) {
  HazardConfig hc;
  hc.seed = 5;
  hc.dma_fail_rate = 0.9;
  hc.window_start = 100;
  hc.window_end = 200;
  HazardInjector inj(hc);
  for (SimTime t = 0; t < 100; ++t) EXPECT_FALSE(inj.dma_copy_fails(t));
  bool fired = false;
  for (SimTime t = 100; t < 200; ++t) fired |= inj.dma_copy_fails(t);
  EXPECT_TRUE(fired);
  for (SimTime t = 200; t < 300; ++t) EXPECT_FALSE(inj.dma_copy_fails(t));
}

TEST(HazardInjector, RejectsInvalidConfig) {
  HazardConfig hc;
  hc.dma_fail_rate = 1.0;  // certain failure would retry forever
  EXPECT_THROW(HazardInjector{hc}, ConfigError);
  hc.dma_fail_rate = -0.1;
  EXPECT_THROW(HazardInjector{hc}, ConfigError);
  hc.dma_fail_rate = 0.5;
  hc.window_start = 200;
  hc.window_end = 100;
  EXPECT_THROW(HazardInjector{hc}, ConfigError);
}

TEST(ConfigErrorType, CarriesParameterAndReadsAsInvalidArgument) {
  HazardConfig hc;
  hc.fb_corrupt_rate = 2.0;
  try {
    HazardInjector inj(hc);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("fb_corrupt_rate"),
              std::string::npos);
    EXPECT_NE(e.param().find("fb_corrupt_rate"), std::string::npos);
  }
  // Existing call sites catch std::invalid_argument; the structured type
  // must remain convertible.
  SimConfig cfg = base();
  cfg.driver.batch_size = 0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  EXPECT_THROW(Simulator{cfg}, ConfigError);
}

TEST(ConfigErrorType, NegativeHazardRateRejectedAtSimulatorLevel) {
  // A negative rate must reach the injector's validation rather than
  // silently reading as "hazards disabled".
  SimConfig cfg = base();
  cfg.hazards.pma_fail_rate = -0.2;
  EXPECT_THROW(Simulator{cfg}, ConfigError);
}

// --- fault-buffer overflow (no hazards needed) ---------------------------

TEST(FaultBufferOverflow, PastCapacityDropsAreCountedAndRunCompletes) {
  SimConfig cfg = base();
  cfg.fault_buffer.capacity = 4;  // far below concurrent warp demand
  RunResult r = run_regular(cfg, 4ull << 20);
  EXPECT_GT(r.buffer_dropped, 0u);             // overflow really happened
  EXPECT_GT(r.counters.replays_issued, 0u);    // dropped warps re-faulted
  EXPECT_EQ(r.resident_pages_at_end, 1024u);   // every page still arrived
}

// --- recovery paths under injection --------------------------------------

TEST(DmaRecovery, RetriesAreAccountedAndBytesStayExact) {
  SimConfig cfg = base();
  cfg.hazards.dma_fail_rate = 0.5;
  RunResult r = run_regular(cfg, 8ull << 20);
  EXPECT_TRUE(r.hazards_enabled);
  EXPECT_GT(r.hazards.dma_failures, 0u);
  EXPECT_GT(r.counters.dma_retries, 0u);
  EXPECT_GE(r.counters.dma_runs_retried, r.counters.dma_retries);
  EXPECT_GT(r.profiler.total(CostCategory::ErrorRecovery), 0u);
  // A failed run must never reserve the interconnect: moved bytes match
  // migrated pages exactly even when half the runs fail first try.
  EXPECT_EQ(r.bytes_h2d, r.counters.pages_migrated_h2d * kPageSize);
  EXPECT_EQ(r.resident_pages_at_end, 2048u);
}

TEST(DmaRecovery, PersistentFailuresTriggerEngineReset) {
  SimConfig cfg = base();
  cfg.hazards.dma_fail_rate = 0.9;
  cfg.driver.recovery.dma_max_retries = 2;  // cheap reset threshold
  RunResult r = run_regular(cfg, 2ull << 20);
  EXPECT_GT(r.counters.dma_engine_resets, 0u);
  EXPECT_EQ(r.resident_pages_at_end, 512u);  // still converges
}

TEST(FbCorruption, RunSurvivesDropsDuplicatesAndStalls) {
  SimConfig cfg = base();
  cfg.hazards.fb_corrupt_rate = 0.3;
  RunResult r = run_regular(cfg, 8ull << 20);
  const HazardStats& h = r.hazards;
  EXPECT_GT(h.fb_dropped + h.fb_duplicated + h.fb_stalled, 0u);
  EXPECT_EQ(r.resident_pages_at_end, 2048u);
}

TEST(PmaRecovery, TransientFailuresBackOffAndRetry) {
  SimConfig cfg = base();
  cfg.hazards.pma_fail_rate = 0.4;
  RunResult r = run_named(cfg, "random", 24ull << 20);  // oversubscribed
  EXPECT_GT(r.hazards.pma_failures, 0u);
  EXPECT_GT(r.counters.pma_alloc_retries, 0u);
  EXPECT_GT(r.profiler.total(CostCategory::ErrorRecovery), 0u);
}

TEST(StormWatchdog, RefaultStormEscalatesPolicyAndFlushes) {
  SimConfig cfg = base();
  cfg.driver.replay_policy = ReplayPolicyKind::Block;  // max refault traffic
  cfg.driver.storm.enabled = true;
  cfg.driver.storm.refault_threshold = 4;  // hair trigger for the test
  cfg.hazards.fb_corrupt_rate = 0.3;       // duplicates feed the detector
  RunResult r = run_named(cfg, "random", 24ull << 20);
  EXPECT_GT(r.counters.replay_storms, 0u);
  EXPECT_GT(r.counters.storm_flushes, 0u);
}

// --- graceful degradation when eviction has no victim --------------------

TEST(GracefulDegradation, NoVictimFallsBackToRemoteMapping) {
  // One 2 MB VABlock on a 1 MiB GPU: the faulting block owns every
  // resident page, so eviction can never find a victim. The driver used to
  // throw here; now the unbackable pages degrade to remote (host) mapping
  // and the run completes.
  SimConfig cfg;
  cfg.set_gpu_memory(1ull << 20);
  cfg.enable_fault_log = false;
  RunResult r = run_regular(cfg, 2ull << 20);
  EXPECT_GT(r.counters.eviction_victim_unavailable, 0u);
  EXPECT_GT(r.counters.degraded_remote_pages, 0u);
  EXPECT_GT(r.bytes_zero_copy, 0u);  // degraded pages served remotely
}

// --- end-to-end determinism ----------------------------------------------

TEST(HazardDeterminism, SameConfigSameSeedSameRun) {
  SimConfig cfg = base();
  cfg.hazards.dma_fail_rate = 0.2;
  cfg.hazards.fb_corrupt_rate = 0.1;
  cfg.hazards.pma_fail_rate = 0.2;
  RunResult a = run_named(cfg, "random", 24ull << 20);
  RunResult b = run_named(cfg, "random", 24ull << 20);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.hazards.total(), b.hazards.total());
  EXPECT_EQ(a.counters.dma_retries, b.counters.dma_retries);
  EXPECT_EQ(a.counters.pma_alloc_retries, b.counters.pma_alloc_retries);
  EXPECT_EQ(a.counters.faults_serviced, b.counters.faults_serviced);
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d);
  EXPECT_EQ(a.bytes_d2h, b.bytes_d2h);
  EXPECT_EQ(a.profiler.grand_total(), b.profiler.grand_total());
}

TEST(HazardDeterminism, ExplicitHazardSeedOverridesDerivation) {
  SimConfig cfg = base();
  cfg.hazards.dma_fail_rate = 0.2;
  cfg.hazards.seed = 1234;
  RunResult a = run_regular(cfg, 4ull << 20);
  cfg.seed = 43;  // master seed changes, hazard stream must not
  RunResult b = run_regular(cfg, 4ull << 20);
  // Different master seeds shuffle the workload, so totals differ, but
  // both runs drew hazards from the same fixed stream (smoke check: both
  // still injected something).
  EXPECT_GT(a.hazards.dma_failures, 0u);
  EXPECT_GT(b.hazards.dma_failures, 0u);
}

}  // namespace
}  // namespace uvmsim
