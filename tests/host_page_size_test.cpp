// Host base-page granularity (x86 4 KB vs Power9 64 KB) tests.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/regular.h"

namespace uvmsim {
namespace {

SimConfig p9_cfg() {
  SimConfig cfg;
  cfg.set_gpu_memory(32ull << 20);
  cfg.set_host_page_size(64 << 10);
  cfg.enable_fault_log = false;
  return cfg;
}

TEST(HostPageSize, SetterConfiguresBothSides) {
  SimConfig cfg;
  cfg.set_host_page_size(64 << 10);
  EXPECT_EQ(cfg.gpu.fault_granularity_pages, 16u);
  EXPECT_EQ(cfg.driver.base_page_pages, 16u);
  EXPECT_FALSE(cfg.driver.big_page_upgrade);  // redundant at 64K
  cfg.set_host_page_size(4 << 10);
  EXPECT_EQ(cfg.gpu.fault_granularity_pages, 1u);
  EXPECT_EQ(cfg.driver.base_page_pages, 1u);
}

TEST(HostPageSize, InvalidBasePageThrows) {
  SimConfig cfg;
  cfg.driver.base_page_pages = 0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg.driver.base_page_pages = 3;  // does not divide 512
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

TEST(HostPageSize, ServiceWidensToBasePage) {
  SimConfig cfg = p9_cfg();
  cfg.costs.driver_cold_start = 0;
  Simulator sim(cfg);
  RangeId rid = sim.malloc_managed(2ull << 20, "data");
  VirtPage base = sim.address_space().range(rid).first_page;

  FaultEntry e;
  e.page = base + 5;  // inside the first 64 KB group
  e.block = block_of_page(e.page);
  e.range = rid;
  ASSERT_TRUE(sim.fault_buffer().push(e, 0));
  sim.driver().on_gpu_interrupt();
  sim.event_queue().run();

  const VaBlock& blk = sim.address_space().block_of(e.page);
  // The whole 16-page group is serviced: 1 faulted page + 15 base-page
  // fill pages (not prefetch).
  EXPECT_EQ(blk.gpu_resident.count_range(0, 16), 16u);
  EXPECT_EQ(sim.driver().counters().faults_serviced, 1u);
  EXPECT_EQ(sim.driver().counters().base_page_fill_pages, 15u);
}

TEST(HostPageSize, Power9RaisesFarFewerFaults) {
  auto faults = [](bool p9) {
    SimConfig cfg;
    cfg.set_gpu_memory(32ull << 20);
    if (p9) cfg.set_host_page_size(64 << 10);
    cfg.driver.prefetch_enabled = false;  // isolate base-page effects
    cfg.enable_fault_log = false;
    Simulator sim(cfg);
    RegularTouch wl(8ull << 20);
    wl.setup(sim);
    return sim.run().counters.faults_fetched;
  };
  std::uint64_t x86 = faults(false);
  std::uint64_t p9 = faults(true);
  EXPECT_GT(x86, 4 * p9);
}

TEST(HostPageSize, Power9RunCompletesOversubscribed) {
  SimConfig cfg = p9_cfg();
  Simulator sim(cfg);
  RegularTouch wl(48ull << 20);  // 150 %
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_GT(r.counters.evictions, 0u);
  EXPECT_LE(r.resident_pages_at_end * kPageSize, cfg.gpu_memory());
}

TEST(HostPageSize, GroupCoalescingInEngine) {
  // Two warps faulting different pages of the SAME 64 KB group: one entry.
  SimConfig cfg = p9_cfg();
  Simulator sim(cfg);
  RangeId rid = sim.malloc_managed(2ull << 20, "data");
  VirtPage base = sim.address_space().range(rid).first_page;

  KernelSpec k;
  k.name = "same_group";
  k.blocks.emplace_back();
  for (int w = 0; w < 2; ++w) {
    AccessStream s;
    s.add_run(base + static_cast<VirtPage>(w) * 3, 1, false, 100);
    k.blocks.back().warps.push_back(std::move(s));
  }
  sim.launch(std::move(k));
  RunResult r = sim.run();
  EXPECT_EQ(r.kernels[0].faults_raised, 1u);
  EXPECT_GE(sim.gpu().faults_coalesced(), 1u);
}

}  // namespace
}  // namespace uvmsim
