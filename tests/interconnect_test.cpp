#include "mem/interconnect.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

Interconnect::Config cfg_1gbps() {
  Interconnect::Config c;
  c.bandwidth_Bps = 1e9;  // 1 GB/s: 1 byte/ns, easy math
  c.latency = 1000;       // 1 us
  return c;
}

TEST(Interconnect, TransferTimeIsLatencyPlusWire) {
  Interconnect link(cfg_1gbps());
  EXPECT_EQ(link.transfer_time(0), 1000u);
  EXPECT_EQ(link.transfer_time(5000), 6000u);
}

TEST(Interconnect, SameDirectionSerializes) {
  Interconnect link(cfg_1gbps());
  SimTime t1 = link.reserve(Direction::HostToDevice, 0, 1000);     // 0..2000
  SimTime t2 = link.reserve(Direction::HostToDevice, 0, 1000);     // 2000..4000
  EXPECT_EQ(t1, 2000u);
  EXPECT_EQ(t2, 4000u);
}

TEST(Interconnect, OppositeDirectionsIndependent) {
  Interconnect link(cfg_1gbps());
  link.reserve(Direction::HostToDevice, 0, 100000);
  SimTime t = link.reserve(Direction::DeviceToHost, 0, 1000);
  EXPECT_EQ(t, 2000u);  // unaffected by the big H2D transfer
}

TEST(Interconnect, EarliestRespected) {
  Interconnect link(cfg_1gbps());
  SimTime t = link.reserve(Direction::HostToDevice, 5000, 1000);
  EXPECT_EQ(t, 7000u);  // starts at 5000
}

TEST(Interconnect, QueuedTransferStartsWhenFree) {
  Interconnect link(cfg_1gbps());
  link.reserve(Direction::HostToDevice, 0, 8000);  // busy until 9000
  SimTime t = link.reserve(Direction::HostToDevice, 100, 1000);
  EXPECT_EQ(t, 11000u);  // waits for the channel
}

TEST(Interconnect, ByteAndTransferAccounting) {
  Interconnect link(cfg_1gbps());
  link.reserve(Direction::HostToDevice, 0, 123);
  link.reserve(Direction::HostToDevice, 0, 877);
  link.reserve(Direction::DeviceToHost, 0, 5);
  EXPECT_EQ(link.bytes_moved(Direction::HostToDevice), 1000u);
  EXPECT_EQ(link.bytes_moved(Direction::DeviceToHost), 5u);
  EXPECT_EQ(link.transfers(Direction::HostToDevice), 2u);
  EXPECT_EQ(link.transfers(Direction::DeviceToHost), 1u);
}

TEST(Interconnect, PipelinedReservationSkipsFixedLatency) {
  Interconnect link(cfg_1gbps());
  // 100 B at 1 B/ns + 50 ns overhead; no 1 us latency.
  SimTime done = link.reserve_pipelined(Direction::HostToDevice, 0, 100, 50);
  EXPECT_EQ(done, 150u);
}

TEST(Interconnect, PipelinedTransactionsQueue) {
  Interconnect link(cfg_1gbps());
  link.reserve_pipelined(Direction::HostToDevice, 0, 100, 50);
  SimTime done = link.reserve_pipelined(Direction::HostToDevice, 0, 100, 50);
  EXPECT_EQ(done, 300u);  // behind the first transaction
}

TEST(Interconnect, PipelinedQueuesBehindBulkTransfers) {
  Interconnect link(cfg_1gbps());
  link.reserve(Direction::HostToDevice, 0, 8000);  // busy until 9000
  SimTime done = link.reserve_pipelined(Direction::HostToDevice, 0, 100, 50);
  EXPECT_EQ(done, 9150u);
}

TEST(Interconnect, ZeroCopyBytesAccountedSeparately) {
  Interconnect link(cfg_1gbps());
  link.reserve(Direction::HostToDevice, 0, 1000);
  link.reserve_pipelined(Direction::HostToDevice, 0, 128, 50);
  EXPECT_EQ(link.bytes_moved(Direction::HostToDevice), 1000u);
  EXPECT_EQ(link.zero_copy_bytes(Direction::HostToDevice), 128u);
  EXPECT_EQ(link.transfers(Direction::HostToDevice), 1u);
}

TEST(Interconnect, BusyUntilTracksChannel) {
  Interconnect link(cfg_1gbps());
  EXPECT_EQ(link.busy_until(Direction::HostToDevice), 0u);
  link.reserve(Direction::HostToDevice, 0, 1000);
  EXPECT_EQ(link.busy_until(Direction::HostToDevice), 2000u);
}

}  // namespace
}  // namespace uvmsim
