// Latency-distribution instrumentation tests.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/regular.h"

namespace uvmsim {
namespace {

SimConfig cfg() {
  SimConfig c;
  c.set_gpu_memory(32ull << 20);
  c.enable_fault_log = false;
  return c;
}

TEST(LatencyStats, StallEpisodesRecorded) {
  Simulator sim(cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_GT(r.stall_latency.count(), 0u);
  // Quantiles are ordered and in a sane band (µs to ms).
  double p50 = r.stall_latency.quantile(0.5);
  double p99 = r.stall_latency.quantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 1e3);   // > 1 us
  EXPECT_LT(p99, 1e10);  // < 10 s
}

TEST(LatencyStats, EpisodeCountMatchesKernelStats) {
  Simulator sim(cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  std::uint64_t episodes = 0;
  for (const auto& k : r.kernels) episodes += k.stall_episodes;
  EXPECT_EQ(r.stall_latency.count(), episodes);
}

TEST(LatencyStats, QueueLatencySamplesEveryFetchedFault) {
  Simulator sim(cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_EQ(r.fault_queue_latency.count(), r.counters.faults_fetched);
  // Buffer residence includes at least the interrupt latency for the fault
  // that triggered the wakeup.
  EXPECT_GE(r.fault_queue_latency.quantile(0.5),
            to_us(sim.config().costs.interrupt_latency) * 1e3 / 4);
}

TEST(LatencyStats, FaultFreeRunHasNoSamples) {
  Simulator sim(cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  sim.prefill_all_resident();
  RunResult r = sim.run();
  EXPECT_EQ(r.stall_latency.count(), 0u);
  EXPECT_EQ(r.fault_queue_latency.count(), 0u);
}

}  // namespace
}  // namespace uvmsim
