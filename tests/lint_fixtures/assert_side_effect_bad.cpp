// Fixture: the assert advances the cursor; NDEBUG builds skip it.
#include <cassert>

unsigned drain(unsigned* cursor, unsigned limit) {
  assert(++*cursor <= limit);
  return *cursor;
}
