// Fixture: the side effect happens outside the assert.
#include <cassert>

unsigned drain(unsigned* cursor, unsigned limit) {
  ++*cursor;
  assert(*cursor <= limit);
  return *cursor;
}
