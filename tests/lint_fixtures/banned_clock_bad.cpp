// Fixture: stamps results with the wall clock.
#include <ctime>

long stamp() {
  return static_cast<long>(time(nullptr));
}
