// Fixture: timestamps come from the simulated clock.
using SimTime = unsigned long long;

SimTime stamp(SimTime now) {
  return now;
}
