// Fixture: seeds simulation state from the process-wide PRNG.
#include <cstdlib>

int roll_latency() {
  return std::rand() % 100;
}
