// Fixture: randomness flows through an injected generator object.
struct Rng {
  unsigned next();
};

int roll_latency(Rng& rng) {
  return static_cast<int>(rng.next() % 100);
}
