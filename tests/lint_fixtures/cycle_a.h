// Fixture: half of a two-header include cycle.
#pragma once

#include "cycle_b.h"

struct CycleA {
  int value;
};
