// Fixture: the other half of the include cycle.
#pragma once

#include "cycle_a.h"

struct CycleB {
  int value;
};
