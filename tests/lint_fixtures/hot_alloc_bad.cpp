// Fixture: heap allocation on the annotated critical path.
#define UVMSIM_HOT

struct Node {
  Node* next = nullptr;
};

UVMSIM_HOT Node* push(Node* head) {
  Node* n = new Node;
  n->next = head;
  return n;
}
