// Fixture: the hot path only touches preallocated storage.
#define UVMSIM_HOT

struct Node {
  Node* next = nullptr;
};

UVMSIM_HOT Node* push(Node* slab, unsigned slot, Node* head) {
  Node* n = &slab[slot];
  n->next = head;
  return n;
}
