// Fixture: constructs an allocating container per call on the hot path.
#define UVMSIM_HOT
#include <vector>

UVMSIM_HOT unsigned count_set(const unsigned long long* words, unsigned n) {
  std::vector<unsigned> set_bits;
  for (unsigned i = 0; i < n; ++i) {
    if (words[i] != 0) set_bits.push_back(i);
  }
  return static_cast<unsigned>(set_bits.size());
}
