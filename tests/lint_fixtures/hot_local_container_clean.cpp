// Fixture: the hot path counts in place; no per-call container.
#define UVMSIM_HOT

UVMSIM_HOT unsigned count_set(const unsigned long long* words, unsigned n) {
  unsigned count = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (words[i] != 0) ++count;
  }
  return count;
}
