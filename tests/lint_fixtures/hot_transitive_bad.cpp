// Bad: heap allocation two calls below a UVMSIM_HOT entry. The per-file
// hot-alloc rule cannot see it (stage_two is not itself annotated); only
// the project pass's call-graph reachability catches it, and the finding
// must carry the full chain hot_entry -> stage_one -> stage_two.
#include <memory>

namespace fix {

struct Widget {
  int v = 0;
};

int stage_two(int n) {
  auto w = std::make_shared<Widget>();
  w->v = n;
  return w->v;
}

int stage_one(int n) { return stage_two(n + 1); }

UVMSIM_HOT int hot_entry(int n) { return stage_one(n); }

}  // namespace fix
