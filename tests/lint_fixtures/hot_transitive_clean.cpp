// Clean: the hot chain writes into caller-provided storage and never
// allocates. cold_path() does allocate, but it is not reachable from any
// UVMSIM_HOT entry — reachability, not file proximity, decides.
#include <memory>

namespace fix {

struct Widget {
  int v = 0;
};

int stage_two(int* slot, int n) {
  *slot = n;
  return *slot;
}

int stage_one(int* slot, int n) { return stage_two(slot, n + 1); }

UVMSIM_HOT int hot_entry(int* slot, int n) { return stage_one(slot, n); }

std::shared_ptr<Widget> cold_path() { return std::make_shared<Widget>(); }

}  // namespace fix
