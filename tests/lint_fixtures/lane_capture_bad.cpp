// Bad: a for_lanes lane body mutates captured shared state (`total_`, a
// member) that is neither lane-indexed, std::atomic, nor declared
// UVMSIM_LANE_OWNED — lanes race on it and the sum depends on scheduling.
#include <cstddef>
#include <vector>

namespace fix {

struct Pool {
  void for_lanes(std::size_t n, std::size_t lanes, const void* body);
};

struct Stats {
  void run(Pool& pool, const std::vector<int>& items) {
    pool.for_lanes(items.size(), 4,
                   [&](std::size_t lane, std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) total_ += items[i];
                   });
  }
  long total_ = 0;
};

}  // namespace fix
