// Clean: each lane writes only its own UVMSIM_LANE_OWNED, lane-indexed
// slot; the accumulators merge serially in lane order after the join.
#include <cstddef>
#include <vector>

namespace fix {

struct Pool {
  void for_lanes(std::size_t n, std::size_t lanes, const void* body);
};

struct Stats {
  void run(Pool& pool, const std::vector<int>& items) {
    UVMSIM_LANE_OWNED std::vector<long> sums;
    sums.resize(4);
    pool.for_lanes(items.size(), 4,
                   [&](std::size_t lane, std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) {
                       sums[lane] += items[i];
                     }
                   });
    for (std::size_t l = 0; l < 4; ++l) total_ += sums[l];
  }
  long total_ = 0;
};

}  // namespace fix
