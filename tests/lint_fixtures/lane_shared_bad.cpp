// Fixture: a servicing-lane body mutates shared state — a by-reference
// capture and a member — instead of filling a per-lane accumulator.
#include <cstddef>
#include <vector>

struct Pool {
  template <typename F>
  void for_lanes(std::size_t n, std::size_t lanes, F&& body);
};

struct Binner {
  std::vector<int> bins_;
  unsigned long total_ = 0;

  void bin(Pool& pool, const std::vector<int>& pages) {
    unsigned long shared_sum = 0;
    pool.for_lanes(pages.size(), 4,
                   [&](std::size_t lane, std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) {
                       shared_sum += pages[i];  // racy cross-lane write
                       total_ += 1;             // member write from a lane
                     }
                   });
  }
};
