// Fixture: lanes fill per-lane accumulators (disjoint slots, lane-local
// writes only); the caller merges serially in lane order. The one
// out-of-lane write that remains — the gather into the preallocated per-lane
// slot — carries the typed suppression the merge step is allowed.
#include <cstddef>
#include <vector>

struct Pool {
  template <typename F>
  void for_lanes(std::size_t n, std::size_t lanes, F&& body);
};

struct Acc {
  unsigned long sum = 0;
  void merge(const Acc& o) { sum += o.sum; }
};

unsigned long bin(Pool& pool, const std::vector<int>& pages) {
  std::vector<Acc> per_lane(4);
  pool.for_lanes(pages.size(), 4,
                 [&](std::size_t lane, std::size_t b, std::size_t e) {
                   Acc local;
                   for (std::size_t i = b; i < e; ++i) {
                     local.sum += static_cast<unsigned long>(pages[i]);
                   }
                   // uvmsim-lint: allow(lane-shared-write, "disjoint per-lane slot, written once before the join")
                   per_lane[lane] = local;
                 });
  Acc total;
  for (const Acc& a : per_lane) total.merge(a);
  return total.sum;
}
