// Fixture: uses std::vector but never includes <vector> itself.
#pragma once

std::vector<int> collect_pages();
