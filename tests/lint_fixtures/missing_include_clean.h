// Fixture: every std:: name is backed by a direct include.
#pragma once

#include <vector>

std::vector<int> collect_pages();
