// Fixture: file-scope mutable counter shared by every pool task.
static unsigned long long faults_serviced = 0;

void note_fault() {
  ++faults_serviced;
}
