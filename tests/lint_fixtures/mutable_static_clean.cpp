// Fixture: shared statics are immutable; mutable state lives per task.
static constexpr unsigned kMaxBatch = 256;

unsigned clamp_batch(unsigned n) {
  return n < kMaxBatch ? n : kMaxBatch;
}
