// Fixture: a one-way include chain; no cycle.
#pragma once

#include "nocycle_b.h"

struct NoCycleA {
  NoCycleB inner;
};
