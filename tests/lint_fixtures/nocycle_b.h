// Fixture: leaf header of the chain.
#pragma once

struct NoCycleB {
  int value;
};
