// Bad: the UVMSIM_ORDERED serial walk consumes UVMSIM_LANE_OWNED
// accumulators (through a helper, two frames down) before any merge point
// — the lanes may not have joined, so the read races and its value depends
// on scheduling.
#include <cstddef>
#include <vector>

namespace fix {

struct Servicer {
  UVMSIM_LANE_OWNED std::vector<long> lane_totals_;

  long peek(std::size_t lane) { return lane_totals_[lane]; }

  UVMSIM_ORDERED long walk(std::size_t n) {
    long acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += peek(i);
    return acc;
  }
};

}  // namespace fix
