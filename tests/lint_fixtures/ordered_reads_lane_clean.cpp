// Clean: the ordered walk merges the lane accumulators first (serially,
// in lane order); reads of UVMSIM_LANE_OWNED state after the merge point
// are the intended consumption.
#include <cstddef>
#include <vector>

namespace fix {

struct Servicer {
  UVMSIM_LANE_OWNED std::vector<long> lane_totals_;
  long merged_ = 0;

  void merge_lanes() {
    for (std::size_t l = 0; l < lane_totals_.size(); ++l) {
      merged_ += lane_totals_[l];
    }
  }

  UVMSIM_ORDERED long walk() {
    merge_lanes();
    return merged_ + static_cast<long>(lane_totals_.size());
  }
};

}  // namespace fix
