// Fixture: ordered container keyed by raw pointer; order tracks the heap.
#include <map>

struct Block {};

std::map<Block*, int> refcounts;
