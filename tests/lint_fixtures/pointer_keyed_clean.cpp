// Fixture: ordered container keyed by a stable integer id.
#include <map>

std::map<unsigned, int> refcounts;
