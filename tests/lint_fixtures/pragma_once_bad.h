// Fixture: no #pragma once and no include guard.
int pages_per_block();
