// Fixture: a classic include guard is accepted as well as #pragma once.
#ifndef UVMSIM_TESTS_LINT_FIXTURES_PRAGMA_ONCE_CLEAN_H_
#define UVMSIM_TESTS_LINT_FIXTURES_PRAGMA_ONCE_CLEAN_H_

int pages_per_block();

#endif  // UVMSIM_TESTS_LINT_FIXTURES_PRAGMA_ONCE_CLEAN_H_
