// Fixture: the suppression omits the mandatory justification string.
#include <cstdlib>

int jitter() {
  // uvmsim-lint: allow(banned-random)
  return std::rand() % 7;
}
