// Fixture: a real violation silenced by a well-formed, justified suppression.
#include <cstdlib>

int jitter() {
  // uvmsim-lint: allow(banned-random, "fixture exercising the suppression path")
  return std::rand() % 7;
}
