// A scoped suppression without a justification is rejected AND does not
// silence the underlying finding.
#include <cstdlib>

// uvmsim-lint: suppress(banned-random)
int noisy_fallback() { return std::rand(); }
