// One function-scope suppression on the line before the signature covers
// every matching finding in the body — no per-line comments needed.
#include <cstdlib>

// uvmsim-lint: suppress(banned-random) demo harness intentionally compares against libc rand
int noisy_fallback() {
  int a = std::rand();
  int b = std::rand();
  return a + b;
}
