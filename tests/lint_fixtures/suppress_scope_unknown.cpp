// A scoped suppression naming a rule that does not exist is itself a
// finding (and suppresses nothing).
// uvmsim-lint: suppress(not-a-real-rule) this justification cannot save it
int harmless() { return 42; }
