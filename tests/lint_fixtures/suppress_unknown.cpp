// Fixture: the suppression names a rule that does not exist.
// uvmsim-lint: allow(totally-made-up-rule, "this should be rejected")
int answer() {
  return 42;
}
