// Fixture: a pool task writes to stdout; output order depends on scheduling.
#include <cstdio>

struct Pool {
  template <typename F>
  void submit(F&& f);
};

void run(Pool& pool, int run_id) {
  pool.submit([run_id] {
    std::printf("run %d done\n", run_id);
  });
}
