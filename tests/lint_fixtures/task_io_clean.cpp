// Fixture: tasks collect results; the caller prints in deterministic order.
struct Pool {
  template <typename F>
  void submit(F&& f);
};

void run(Pool& pool, int* results, int run_id) {
  pool.submit([results, run_id] {
    results[run_id] = run_id * 2;
  });
}
