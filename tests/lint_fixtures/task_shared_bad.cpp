// Fixture: a pool task records into the shared tracer without a guard.
struct Tracer {
  void instant(const char* name);
};

struct Pool {
  template <typename F>
  void submit(F&& f);
};

void run(Pool& pool, Tracer& tracer) {
  pool.submit([&tracer] {
    tracer.instant("task.begin");
  });
}
