// Fixture: each task owns its own recorder; the caller merges afterwards.
struct Recorder {
  void instant(const char* name);
};

struct Pool {
  template <typename F>
  void submit(F&& f);
};

void run(Pool& pool, Recorder* per_task, int run_id) {
  pool.submit([rec = &per_task[run_id]] {
    rec->instant("task.begin");
  });
}
