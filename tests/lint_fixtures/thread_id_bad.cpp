// Fixture: behavior keyed on which worker thread ran the task.
#include <thread>

bool on_some_worker() {
  return std::this_thread::get_id() != std::thread::id{};
}
