// Fixture: workers are identified by an explicit, stable index.
bool on_first_worker(unsigned worker_index) {
  return worker_index == 0;
}
