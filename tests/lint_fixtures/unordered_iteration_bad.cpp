// Fixture: prints in hash order.
#include <cstdio>
#include <unordered_map>

void dump(const std::unordered_map<int, int>& stats) {
  for (const auto& kv : stats) {
    std::printf("%d %d\n", kv.first, kv.second);
  }
}
