// Fixture: iterates a sorted container, stable order.
#include <cstdio>
#include <map>

void dump(const std::map<int, int>& stats) {
  for (const auto& kv : stats) {
    std::printf("%d %d\n", kv.first, kv.second);
  }
}
