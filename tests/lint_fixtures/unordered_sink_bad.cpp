// Bad: range-for over an unordered container whose body reaches output —
// directly (printf) and through a helper that prints. Hash order leaks
// straight into what the user sees.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace fix {

void emit(const std::string& key, int value) {
  std::printf("%s=%d\n", key.c_str(), value);
}

void dump(const std::unordered_map<std::string, int>& counts) {
  for (const auto& kv : counts) {
    emit(kv.first, kv.second);
  }
}

}  // namespace fix
