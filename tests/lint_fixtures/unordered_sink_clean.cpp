// Clean: iterating the unordered container only to accumulate an
// order-independent value is fine; output happens from a sorted copy.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fix {

long total(const std::unordered_map<std::string, int>& counts) {
  long sum = 0;
  for (const auto& kv : counts) {
    sum += kv.second;
  }
  return sum;
}

void dump(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::pair<std::string, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& kv : rows) {
    std::printf("%s=%d\n", kv.first.c_str(), kv.second);
  }
}

}  // namespace fix
