// Fixture: header-scope using-directive leaks into every includer.
#pragma once

#include <string>

using namespace std;

string describe(int code);
