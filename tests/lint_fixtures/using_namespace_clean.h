// Fixture: the header qualifies names explicitly.
#pragma once

#include <string>

std::string describe(int code);
