// Whole-program (project-mode) tests for uvmsim_lint: call-graph
// reachability, the dataflow rules, the on-disk index cache, stable finding
// ids, SARIF output, and the committed-baseline contract. Golden fixtures
// live in tests/lint_fixtures/; the self-analysis test runs the analyzer
// over the real src/ tree and must match tools/lint/baseline.json exactly.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"
#include "baseline.h"
#include "sarif.h"

namespace {

namespace fs = std::filesystem;

using uvmsim::lint::Finding;
using uvmsim::lint::Linter;
using uvmsim::lint::LintOptions;

std::string fixture(const std::string& name) {
  return std::string(UVMSIM_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> lint_project(const std::vector<std::string>& names) {
  LintOptions opts;
  opts.root = UVMSIM_LINT_FIXTURES;
  opts.project = true;
  Linter linter(opts);
  for (const std::string& n : names) {
    EXPECT_TRUE(linter.add_path(fixture(n))) << "cannot read fixture " << n;
  }
  return linter.run();
}

std::string describe(const std::vector<Finding>& fs) {
  std::ostringstream os;
  for (const auto& f : fs) {
    os << "  " << f.file << ":" << f.line << " [" << f.rule << "] ("
       << f.symbol << ") " << f.message << "\n";
  }
  return os.str();
}

TEST(LintProject, HotTransitiveAllocCaughtWithFullChain) {
  const std::vector<Finding> found = lint_project({"hot_transitive_bad.cpp"});
  ASSERT_EQ(found.size(), 1u) << describe(found);
  const Finding& f = found[0];
  EXPECT_EQ(f.rule, "hot-transitive-alloc");
  EXPECT_EQ(f.category, "allocation");
  // The allocation sits two calls below the UVMSIM_HOT entry; the finding
  // must carry the whole chain, in call order.
  const std::size_t p_entry = f.message.find("hot_entry");
  const std::size_t p_one = f.message.find("stage_one");
  const std::size_t p_two = f.message.find("stage_two");
  EXPECT_NE(p_entry, std::string::npos) << f.message;
  EXPECT_NE(p_one, std::string::npos) << f.message;
  EXPECT_NE(p_two, std::string::npos) << f.message;
  EXPECT_LT(p_entry, p_one);
  EXPECT_LT(p_one, p_two);
  EXPECT_NE(f.message.find("make_shared"), std::string::npos) << f.message;
  // Attribution: the finding belongs to the allocating function.
  EXPECT_NE(f.symbol.find("stage_two"), std::string::npos) << f.symbol;
}

TEST(LintProject, LaneCaptureEscapeDetected) {
  const std::vector<Finding> found = lint_project({"lane_capture_bad.cpp"});
  ASSERT_EQ(found.size(), 1u) << describe(found);
  EXPECT_EQ(found[0].rule, "lane-capture-escape");
  EXPECT_NE(found[0].message.find("total_"), std::string::npos)
      << found[0].message;
}

TEST(LintProject, OrderedReadsLaneOwnedDetected) {
  const std::vector<Finding> found =
      lint_project({"ordered_reads_lane_bad.cpp"});
  ASSERT_EQ(found.size(), 1u) << describe(found);
  EXPECT_EQ(found[0].rule, "ordered-reads-lane-owned");
  EXPECT_NE(found[0].message.find("lane_totals_"), std::string::npos)
      << found[0].message;
  // The read happens in a helper, so the finding names the chain.
  EXPECT_NE(found[0].message.find("walk"), std::string::npos)
      << found[0].message;
}

TEST(LintProject, UnorderedSinkIterationDetected) {
  const std::vector<Finding> found = lint_project({"unordered_sink_bad.cpp"});
  ASSERT_EQ(found.size(), 1u) << describe(found);
  EXPECT_EQ(found[0].rule, "unordered-sink-iteration");
  EXPECT_NE(found[0].message.find("counts"), std::string::npos)
      << found[0].message;
  EXPECT_NE(found[0].message.find("emit"), std::string::npos)
      << found[0].message;
}

TEST(LintProject, CleanFixturesAreClean) {
  for (const char* name :
       {"hot_transitive_clean.cpp", "lane_capture_clean.cpp",
        "ordered_reads_lane_clean.cpp", "unordered_sink_clean.cpp"}) {
    SCOPED_TRACE(name);
    const std::vector<Finding> found = lint_project({name});
    EXPECT_TRUE(found.empty()) << describe(found);
  }
}

TEST(LintProject, PerFileLaneAndUnorderedRulesAreSuperseded) {
  // In project mode the token-level unordered-iteration / lane-shared-write
  // rules step aside for their semantic replacements: a bad fixture for the
  // old rules must NOT additionally produce the old finding.
  for (const auto& found :
       {lint_project({"lane_capture_bad.cpp"}),
        lint_project({"unordered_sink_bad.cpp"})}) {
    for (const Finding& f : found) {
      EXPECT_NE(f.rule, "lane-shared-write") << describe(found);
      EXPECT_NE(f.rule, "unordered-iteration") << describe(found);
    }
  }
}

TEST(LintProject, StableFindingIdsIgnoreLines) {
  const std::vector<Finding> found = lint_project({"hot_transitive_bad.cpp"});
  ASSERT_EQ(found.size(), 1u);
  const std::string id = uvmsim::lint::finding_id(found[0], 1);
  // rule:file:symbol — no line number anywhere, so baselines survive churn.
  EXPECT_EQ(id.find("hot-transitive-alloc:"), 0u) << id;
  EXPECT_NE(id.find("hot_transitive_bad.cpp"), std::string::npos) << id;
  EXPECT_NE(id.find("stage_two"), std::string::npos) << id;
  EXPECT_EQ(id.find(std::to_string(found[0].line) + ":"), std::string::npos);
  // Ordinals disambiguate repeats of the same (rule, file, symbol).
  EXPECT_EQ(uvmsim::lint::finding_id(found[0], 2), id + "#2");
}

TEST(LintProject, JsonUsesSchemaVersion2WithIds) {
  const std::vector<Finding> found = lint_project({"hot_transitive_bad.cpp"});
  ASSERT_FALSE(found.empty());
  std::ostringstream os;
  uvmsim::lint::write_findings_json(os, found);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":\"hot-transitive-alloc:"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"symbol\":"), std::string::npos) << json;
}

TEST(LintProject, SarifDocumentHasRulesResultsAndFingerprints) {
  const std::vector<Finding> found = lint_project({"hot_transitive_bad.cpp"});
  ASSERT_FALSE(found.empty());
  std::ostringstream os;
  uvmsim::lint::write_sarif(os, found);
  const std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("uvmsim_lint"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"hot-transitive-alloc\""),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"stableId\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("hot_transitive_bad.cpp"), std::string::npos) << sarif;
}

TEST(LintProject, BaselineSplitsFreshKnownAndStale) {
  const std::vector<Finding> found = lint_project({"hot_transitive_bad.cpp"});
  ASSERT_EQ(found.size(), 1u);
  const std::string id = uvmsim::lint::finding_id(found[0], 1);
  std::vector<uvmsim::lint::BaselineEntry> entries;
  entries.push_back({id, "accepted for the test"});
  entries.push_back({"banned-random:gone.cpp:nobody", "stale entry"});
  std::vector<Finding> fresh;
  std::vector<Finding> known;
  std::vector<std::string> stale;
  uvmsim::lint::apply_baseline(found, entries, fresh, known, stale);
  EXPECT_TRUE(fresh.empty()) << describe(fresh);
  ASSERT_EQ(known.size(), 1u);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "banned-random:gone.cpp:nobody");
}

// ---------------------------------------------------------------------------
// Index cache: warm runs hit, edits invalidate exactly the edited TU.
// ---------------------------------------------------------------------------

class LintIndexCache : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "uvmsim_lint_cache_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "cache");
    write(dir_ / "a.cpp", "int alpha(int x) { return x + 1; }\n");
    write(dir_ / "b.cpp", "int beta(int x) { return x * 2; }\n");
  }
  void TearDown() override { fs::remove_all(dir_); }

  static void write(const fs::path& p, const std::string& text) {
    std::ofstream out(p, std::ios::trunc);
    out << text;
  }

  uvmsim::lint::IndexCacheReport run() {
    LintOptions opts;
    opts.root = dir_.string();
    opts.project = true;
    opts.cache_dir = (dir_ / "cache").string();
    Linter linter(opts);
    EXPECT_TRUE(linter.add_path((dir_ / "a.cpp").string()));
    EXPECT_TRUE(linter.add_path((dir_ / "b.cpp").string()));
    const std::vector<Finding> found = linter.run();
    EXPECT_TRUE(found.empty()) << describe(found);
    return linter.cache_report();
  }

  fs::path dir_;
};

TEST_F(LintIndexCache, ColdWarmAndSelectiveInvalidation) {
  const auto cold = run();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 2u);

  const auto warm = run();
  EXPECT_EQ(warm.hits, 2u);
  EXPECT_EQ(warm.misses, 0u);

  // Editing one TU must re-index only that TU: the content hash keys the
  // cache, so the untouched file still hits.
  write(dir_ / "b.cpp", "int beta(int x) { return x * 3; }\n");
  const auto edited = run();
  EXPECT_EQ(edited.hits, 1u);
  EXPECT_EQ(edited.misses, 1u);

  const auto rewarm = run();
  EXPECT_EQ(rewarm.hits, 2u);
  EXPECT_EQ(rewarm.misses, 0u);
}

TEST_F(LintIndexCache, CorruptCacheEntryReindexes) {
  run();
  // Truncate every cache file: the reader must reject them (missing `end`
  // sentinel) and fall back to a re-parse instead of trusting garbage.
  for (const auto& e : fs::directory_iterator(dir_ / "cache")) {
    write(e.path(), "uvmsim-index 1\n");
  }
  const auto r = run();
  EXPECT_EQ(r.hits, 0u);
  EXPECT_EQ(r.misses, 2u);
}

// ---------------------------------------------------------------------------
// Self-analysis: the committed baseline IS the contract for src/.
// ---------------------------------------------------------------------------

TEST(LintSelfAnalysis, SrcMatchesCommittedBaseline) {
  const std::string root = UVMSIM_REPO_ROOT;
  LintOptions opts;
  opts.root = root;
  opts.project = true;
  Linter linter(opts);
  ASSERT_TRUE(linter.add_path(root + "/src"));
  const std::vector<Finding> found = linter.run();

  std::vector<uvmsim::lint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(uvmsim::lint::read_baseline(root + "/tools/lint/baseline.json",
                                          entries, error))
      << error;
  for (const auto& e : entries) {
    EXPECT_FALSE(e.justification.empty())
        << "baseline entry '" << e.id << "' lacks a justification";
    EXPECT_EQ(e.justification.find("TODO"), std::string::npos)
        << "baseline entry '" << e.id << "' still has a TODO justification";
  }

  std::vector<Finding> fresh;
  std::vector<Finding> known;
  std::vector<std::string> stale;
  uvmsim::lint::apply_baseline(found, entries, fresh, known, stale);
  EXPECT_TRUE(fresh.empty()) << "src/ has findings not in the baseline — fix "
                                "them or add a justified entry:\n"
                             << describe(fresh);
  std::ostringstream os;
  for (const auto& s : stale) os << "  " << s << "\n";
  EXPECT_TRUE(stale.empty())
      << "baseline entries matched no finding (remove them):\n"
      << os.str();
}

}  // namespace
