// Golden-fixture tests for uvmsim_lint. Each rule has a bad fixture that must
// produce that rule (and nothing else) plus a clean counterpart that must
// produce no findings; the suppression fixtures exercise the meta rules.
// Fixtures live in tests/lint_fixtures/ and are lexed, never compiled.
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"
#include "rules.h"

namespace {

using uvmsim::lint::Finding;
using uvmsim::lint::Linter;
using uvmsim::lint::LintOptions;

std::string fixture(const std::string& name) {
  return std::string(UVMSIM_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> lint(const std::vector<std::string>& names) {
  LintOptions opts;
  opts.root = UVMSIM_LINT_FIXTURES;
  Linter linter(opts);
  for (const std::string& n : names) {
    EXPECT_TRUE(linter.add_path(fixture(n))) << "cannot read fixture " << n;
  }
  return linter.run();
}

std::string describe(const std::vector<Finding>& fs) {
  std::ostringstream os;
  for (const auto& f : fs) {
    os << "  " << f.file << ":" << f.line << " [" << f.rule << "] "
       << f.message << "\n";
  }
  return os.str();
}

void expect_only_rule(const std::vector<std::string>& names,
                      const std::string& rule) {
  const std::vector<Finding> fs = lint(names);
  ASSERT_FALSE(fs.empty()) << "expected at least one '" << rule
                           << "' finding in " << names.front();
  for (const auto& f : fs) {
    EXPECT_EQ(f.rule, rule) << "unexpected extra finding:\n" << describe(fs);
    EXPECT_GT(f.line, 0);
    EXPECT_FALSE(f.message.empty());
  }
}

void expect_clean(const std::vector<std::string>& names) {
  const std::vector<Finding> fs = lint(names);
  EXPECT_TRUE(fs.empty()) << "expected clean, got:\n" << describe(fs);
}

struct RuleFixture {
  const char* rule;
  const char* bad;
  const char* clean;
};

// One bad + one clean fixture per rule, as the CI contract requires.
const RuleFixture kRuleFixtures[] = {
    {"banned-random", "banned_random_bad.cpp", "banned_random_clean.cpp"},
    {"banned-clock", "banned_clock_bad.cpp", "banned_clock_clean.cpp"},
    {"unordered-iteration", "unordered_iteration_bad.cpp",
     "unordered_iteration_clean.cpp"},
    {"pointer-keyed-container", "pointer_keyed_bad.cpp",
     "pointer_keyed_clean.cpp"},
    {"thread-id", "thread_id_bad.cpp", "thread_id_clean.cpp"},
    {"hot-alloc", "hot_alloc_bad.cpp", "hot_alloc_clean.cpp"},
    {"hot-local-container", "hot_local_container_bad.cpp",
     "hot_local_container_clean.cpp"},
    {"mutable-static", "mutable_static_bad.cpp", "mutable_static_clean.cpp"},
    {"task-io", "task_io_bad.cpp", "task_io_clean.cpp"},
    {"task-shared-state", "task_shared_bad.cpp", "task_shared_clean.cpp"},
    {"lane-shared-write", "lane_shared_bad.cpp", "lane_shared_clean.cpp"},
    {"using-namespace-header", "using_namespace_bad.h",
     "using_namespace_clean.h"},
    {"assert-side-effect", "assert_side_effect_bad.cpp",
     "assert_side_effect_clean.cpp"},
    {"missing-include", "missing_include_bad.h", "missing_include_clean.h"},
    {"missing-pragma-once", "pragma_once_bad.h", "pragma_once_clean.h"},
};

TEST(LintFixtures, EveryBadFixtureTriggersExactlyItsRule) {
  for (const RuleFixture& rf : kRuleFixtures) {
    SCOPED_TRACE(rf.bad);
    expect_only_rule({rf.bad}, rf.rule);
  }
}

TEST(LintFixtures, EveryCleanFixtureIsClean) {
  for (const RuleFixture& rf : kRuleFixtures) {
    SCOPED_TRACE(rf.clean);
    expect_clean({rf.clean});
  }
}

TEST(LintFixtures, IncludeCycleDetected) {
  expect_only_rule({"cycle_a.h", "cycle_b.h"}, "include-cycle");
}

TEST(LintFixtures, AcyclicIncludeChainIsClean) {
  expect_clean({"nocycle_a.h", "nocycle_b.h"});
}

TEST(LintSuppressions, JustifiedSuppressionSilencesTheFinding) {
  expect_clean({"suppress_ok.cpp"});
}

TEST(LintSuppressions, UnknownRuleIsRejected) {
  expect_only_rule({"suppress_unknown.cpp"}, "suppression-unknown-rule");
}

TEST(LintSuppressions, MissingJustificationIsRejected) {
  const std::vector<Finding> fs = lint({"suppress_nojust.cpp"});
  // The malformed suppression is a finding AND does not silence the
  // underlying banned-random violation.
  std::set<std::string> rules;
  for (const auto& f : fs) rules.insert(f.rule);
  EXPECT_TRUE(rules.count("suppression-missing-justification"))
      << describe(fs);
  EXPECT_TRUE(rules.count("banned-random")) << describe(fs);
}

TEST(LintSuppressions, FunctionScopeSuppressionCoversWholeBody) {
  // Two violations, one suppress(...) comment before the signature.
  expect_clean({"suppress_scope_ok.cpp"});
}

TEST(LintSuppressions, FunctionScopeUnknownRuleIsRejected) {
  expect_only_rule({"suppress_scope_unknown.cpp"}, "suppression-unknown-rule");
}

TEST(LintSuppressions, FunctionScopeMissingJustificationIsRejected) {
  const std::vector<Finding> fs = lint({"suppress_scope_nojust.cpp"});
  std::set<std::string> rules;
  for (const auto& f : fs) rules.insert(f.rule);
  EXPECT_TRUE(rules.count("suppression-missing-justification"))
      << describe(fs);
  EXPECT_TRUE(rules.count("banned-random")) << describe(fs);
}

TEST(LintRules, TableIsCompleteAndCategorized) {
  const auto& rules = uvmsim::lint::all_rules();
  EXPECT_GE(rules.size(), 16u);
  const std::set<std::string> cats = {"determinism", "allocation",
                                      "concurrency", "hygiene", "meta"};
  std::set<std::string> ids;
  for (const auto& r : rules) {
    EXPECT_TRUE(cats.count(std::string(r.category)))
        << r.id << " -> " << r.category;
    EXPECT_FALSE(r.summary.empty()) << r.id;
    EXPECT_TRUE(ids.insert(std::string(r.id)).second)
        << "duplicate rule id " << r.id;
    EXPECT_TRUE(uvmsim::lint::is_known_rule(std::string(r.id)));
  }
  EXPECT_FALSE(uvmsim::lint::is_known_rule("totally-made-up-rule"));
  EXPECT_TRUE(uvmsim::lint::is_meta_rule("suppression-unknown-rule"));
  EXPECT_FALSE(uvmsim::lint::is_meta_rule("banned-random"));
}

TEST(LintJson, FindingsSerializeWithStableShape) {
  const std::vector<Finding> fs = lint({"banned_random_bad.cpp"});
  ASSERT_FALSE(fs.empty());
  std::ostringstream os;
  uvmsim::lint::write_findings_json(os, fs);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":\"banned-random:"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":" + std::to_string(fs.size())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\":\"banned-random\""), std::string::npos)
      << json;
  // Valid JSON must not contain raw control characters or stray backslashes.
  for (char c : json) {
    EXPECT_FALSE(c != '\n' && static_cast<unsigned char>(c) < 0x20)
        << "raw control char in JSON output";
  }
}

TEST(LintJson, EmptyFindingsStillValidDocument) {
  std::ostringstream os;
  uvmsim::lint::write_findings_json(os, {});
  EXPECT_NE(os.str().find("\"count\":0"), std::string::npos);
}

}  // namespace
