// Markov-prefetcher unit and property tests (PR 10): table semantics,
// config validation, the determinism contract (same trace => same
// predictions, any lane count), and the speculative-backing notification
// golden that pins the driver's allocate-without-touch contract for the
// eviction-policy panel.
#include "uvm/markov_prefetcher.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/errors.h"
#include "core/simulator.h"
#include "uvm/driver.h"
#include "uvm/eviction_lru.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

MarkovPrefetchConfig small_cfg() {
  MarkovPrefetchConfig cfg;
  cfg.table_entries = 64;
  cfg.confidence_max = 7;
  cfg.confidence_emit = 3;
  cfg.degree = 2;
  return cfg;
}

TEST(MarkovConfig, RejectsBadTableSizes) {
  auto cfg = small_cfg();
  cfg.table_entries = 0;
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg.table_entries = 1;  // < 2
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg.table_entries = 48;  // not a power of two
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg.table_entries = 1u << 21;  // above the 2^20 ceiling
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg.table_entries = 1u << 20;
  EXPECT_NO_THROW(MarkovPrefetcher{cfg});
}

TEST(MarkovConfig, RejectsBadDegreeAndThresholds) {
  auto cfg = small_cfg();
  cfg.degree = 0;
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg.degree = MarkovPrefetcher::kMaxDegree + 1;
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg = small_cfg();
  cfg.confidence_emit = 0;  // would emit untrained predictions
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
  cfg = small_cfg();
  cfg.confidence_emit = cfg.confidence_max + 1;  // unreachable threshold
  EXPECT_THROW(MarkovPrefetcher{cfg}, ConfigError);
}

TEST(MarkovPredictor, LearnsConstantStrideAfterThreshold) {
  MarkovPrefetcher m(small_cfg());
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> out{};
  // Stride +2: 0, 2, 4, ... Confidence for (+2 -> +2) reaches the emit
  // threshold (3) only after the transition is confirmed three times.
  for (VaBlockId b : {0u, 2u, 4u, 6u}) {
    m.observe(b);
    EXPECT_EQ(m.predict(b, out), 0u) << "premature emission at block " << b;
  }
  m.observe(8);  // third confirmation
  ASSERT_EQ(m.predict(8, out), 2u);  // degree 2: chain two deltas
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 12u);
}

TEST(MarkovPredictor, RepeatsOfCurrentBlockAreIgnored) {
  MarkovPrefetcher m(small_cfg());
  for (VaBlockId b : {0u, 0u, 2u, 2u, 4u, 4u, 6u, 6u, 8u}) m.observe(b);
  // Delta-0 repeats neither train nor disturb the +2 chain.
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> out{};
  ASSERT_EQ(m.predict(8, out), 2u);
  EXPECT_EQ(out[0], 10u);
}

TEST(MarkovPredictor, MissesDampConfidenceBeforeRetraining) {
  MarkovPrefetcher m(small_cfg());
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> out{};
  for (VaBlockId b : {0u, 2u, 4u, 6u, 8u}) m.observe(b);  // (+2 -> +2) conf 3
  ASSERT_GT(m.predict(8, out), 0u);
  m.observe(9);   // miss: damps (+2 -> +2) to conf 2, does not retrain it
  m.observe(11);  // context is +2 again...
  EXPECT_EQ(m.predict(11, out), 0u);  // ...but confidence sits below the gate
  m.observe(13);  // one confirmation restores the damped stride
  ASSERT_EQ(m.predict(13, out), 2u);
  EXPECT_EQ(out[0], 15u);
}

TEST(MarkovPredictor, NegativeStrideStopsAtBlockZero) {
  MarkovPrefetcher m(small_cfg());
  for (VaBlockId b : {20u, 16u, 12u, 8u, 4u}) m.observe(b);  // stride -4
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> out{};
  // From block 4 the chain could emit 0 then -4: the underflow guard keeps
  // the emission inside the block-ID space.
  const std::size_t n = m.predict(4, out);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(MarkovPredictor, AdvanceKeepsHistoryWithoutTraining) {
  MarkovPrefetcher m(small_cfg());
  for (VaBlockId b : {0u, 1u, 2u, 3u, 4u}) m.observe(b);  // (+1 -> +1) conf 3
  const std::uint64_t trained = m.observes();
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> out{};
  ASSERT_EQ(m.predict(4, out), 2u);
  // The driver advances over its own emissions (5, 6): the history stays
  // contiguous but no confidence moves.
  m.advance(5);
  m.advance(6);
  EXPECT_EQ(m.observes(), trained);
  // The next real fault (7) reads as delta +1 from block 6 — NOT as the
  // delta-3 jump 4 -> 7 that would have churned the table.
  m.observe(7);
  ASSERT_EQ(m.predict(7, out), 2u);
  EXPECT_EQ(out[0], 8u);
}

TEST(MarkovPredictor, SameTraceSamePredictions) {
  // Determinism property at the unit level: two predictors fed the same
  // trace agree on every prediction, including mid-trace.
  auto trace = [] {
    std::vector<VaBlockId> t;
    std::uint64_t s = 1234;
    VaBlockId b = 0;
    for (int i = 0; i < 500; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      b += (s >> 11) % 5;
      t.push_back(b);
    }
    return t;
  }();
  MarkovPrefetcher a(small_cfg());
  MarkovPrefetcher b(small_cfg());
  std::array<VaBlockId, MarkovPrefetcher::kMaxDegree> oa{}, ob{};
  for (VaBlockId blk : trace) {
    a.observe(blk);
    b.observe(blk);
    const std::size_t na = a.predict(blk, oa);
    const std::size_t nb = b.predict(blk, ob);
    ASSERT_EQ(na, nb);
    for (std::size_t i = 0; i < na; ++i) ASSERT_EQ(oa[i], ob[i]);
  }
  EXPECT_EQ(a.observes(), b.observes());
}

// --- end-to-end determinism: lane count must not leak into the policy ----

RunResult run_strided_markov(std::uint32_t lanes,
                             EvictionPolicyKind eviction) {
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  cfg.enable_fault_log = false;
  cfg.driver.prefetch_policy = PrefetchPolicyKind::Markov;
  cfg.driver.eviction_policy = eviction;
  cfg.driver.service_lanes = lanes;
  Simulator sim(cfg);
  make_workload("strided", 24ull << 20)->setup(sim);  // oversubscribed
  return sim.run();
}

TEST(MarkovDeterminism, LaneCountInvariantAcrossPolicyPanel) {
  for (EvictionPolicyKind ev :
       {EvictionPolicyKind::Lru, EvictionPolicyKind::Clock,
        EvictionPolicyKind::TwoQ}) {
    const RunResult one = run_strided_markov(1, ev);
    const RunResult four = run_strided_markov(4, ev);
    SCOPED_TRACE(to_string(ev));
    EXPECT_EQ(one.end_time, four.end_time);
    EXPECT_EQ(one.counters.faults_fetched, four.counters.faults_fetched);
    EXPECT_EQ(one.counters.pages_prefetched, four.counters.pages_prefetched);
    EXPECT_EQ(one.counters.pages_evicted, four.counters.pages_evicted);
    EXPECT_EQ(one.counters.markov_observes, four.counters.markov_observes);
    EXPECT_EQ(one.counters.markov_predictions,
              four.counters.markov_predictions);
    EXPECT_EQ(one.counters.markov_blocks_prefetched,
              four.counters.markov_blocks_prefetched);
    EXPECT_GT(one.counters.markov_observes, 0u);
  }
}

// --- speculative-backing notification golden (PR-10 bugfix audit) --------

/// LRU that records every lifecycle notification in arrival order.
class RecordingEviction final : public LruEviction {
 public:
  void on_slice_allocated(SliceKey k) override {
    events.push_back("A" + std::to_string(k.block));
    LruEviction::on_slice_allocated(k);
  }
  void on_slice_touched(SliceKey k) override {
    events.push_back("T" + std::to_string(k.block));
    LruEviction::on_slice_touched(k);
  }
  std::vector<std::string> events;
};

TEST(SpeculativeBacking, EmitsAllocateWithoutTouch) {
  // Demand-fault blocks 0..4 one pass at a time. The +1 block-delta chain
  // reaches the emit threshold while servicing block 4, so the markov
  // predictor speculatively populates blocks 5 and 6 — and the policy must
  // see them ALLOCATED but never TOUCHED: speculation is not a use, and
  // CLOCK/2Q rank victims on exactly that distinction.
  SimConfig cfg;
  cfg.set_gpu_memory(64ull << 20);  // undersubscribed: no eviction noise
  cfg.costs.driver_cold_start = 0;
  cfg.driver.prefetch_policy = PrefetchPolicyKind::Markov;
  Simulator sim(cfg);
  sim.malloc_managed(16ull << 20, "data");  // 8 blocks

  auto rec = std::make_unique<RecordingEviction>();
  RecordingEviction* raw = rec.get();
  sim.driver().set_eviction_policy(std::move(rec));

  for (VaBlockId b = 0; b <= 4; ++b) {
    FaultEntry e;
    e.page = b * kPagesPerBlock;
    e.block = b;
    e.range = sim.address_space().range_of(e.page);
    e.access = FaultAccessType::Read;
    ASSERT_TRUE(sim.fault_buffer().push(e, sim.event_queue().now()));
    sim.driver().on_gpu_interrupt();
    sim.event_queue().run();
  }

  EXPECT_GT(sim.driver().counters().markov_blocks_prefetched, 0u);
  // Golden sequence: each demand pass allocates then touches its block; the
  // pass that crossed the confidence threshold appends the two speculative
  // allocations with no touch — ever — for blocks 5 and 6.
  const std::vector<std::string> want = {"A0", "T0", "A1", "T1", "A2", "T2",
                                         "A3", "T3", "A4", "T4", "A5", "A6"};
  EXPECT_EQ(raw->events, want);
  // Speculative residency actually landed.
  EXPECT_GT(sim.address_space().block(5).gpu_resident.count(), 0u);
}

}  // namespace
}  // namespace uvmsim
