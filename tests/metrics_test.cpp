#include "core/metrics.h"

#include <gtest/gtest.h>

#include <array>

namespace uvmsim {
namespace {

TEST(Metrics, FaultReductionMatchesPaperRows) {
  // Paper Table I rows recompute exactly.
  EXPECT_NEAR(fault_reduction_percent(2493569, 442011), 82.27, 0.01);
  EXPECT_NEAR(fault_reduction_percent(2522931, 51558), 97.95, 0.01);
  EXPECT_NEAR(fault_reduction_percent(6522314, 223998), 96.56, 0.01);
  EXPECT_NEAR(fault_reduction_percent(139785, 50231), 64.06, 0.01);
}

TEST(Metrics, FaultReductionEdgeCases) {
  EXPECT_EQ(fault_reduction_percent(0, 0), 0.0);
  EXPECT_EQ(fault_reduction_percent(100, 0), 100.0);
  EXPECT_EQ(fault_reduction_percent(100, 100), 0.0);
  EXPECT_LT(fault_reduction_percent(100, 150), 0.0);  // prefetch hurt
}

TEST(Metrics, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3ull << 20), "3 MiB");
  EXPECT_EQ(format_bytes(5ull << 30), "5 GiB");
}

TEST(Metrics, FormatDuration) {
  EXPECT_EQ(format_duration(500), "0.5 us");
  EXPECT_EQ(format_duration(42 * kMicrosecond), "42 us");
  EXPECT_EQ(format_duration(12 * kMillisecond), "12 ms");
  EXPECT_EQ(format_duration(15 * kSecond), "15 s");
}

TEST(Metrics, RoughlyMonotonic) {
  std::array<double, 4> inc = {1.0, 2.0, 3.0, 4.0};
  EXPECT_TRUE(roughly_monotonic_increasing(inc));
  std::array<double, 4> noisy = {1.0, 2.0, 1.97, 4.0};  // 1.5 % dip ok
  EXPECT_TRUE(roughly_monotonic_increasing(noisy, 0.05));
  std::array<double, 4> broken = {1.0, 2.0, 1.0, 4.0};
  EXPECT_FALSE(roughly_monotonic_increasing(broken, 0.05));
  std::array<double, 1> single = {7.0};
  EXPECT_TRUE(roughly_monotonic_increasing(single));
}

TEST(Metrics, Slowdown) {
  EXPECT_DOUBLE_EQ(slowdown(100, 400), 4.0);
  EXPECT_DOUBLE_EQ(slowdown(0, 100), 0.0);
}

}  // namespace
}  // namespace uvmsim
