#include "mem/page_mask.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace uvmsim {
namespace {

// Naive per-bit references the word-level implementations are checked
// against.
std::uint32_t ref_count_range(const PageMask& m, std::uint32_t lo,
                              std::uint32_t hi) {
  std::uint32_t n = 0;
  for (std::uint32_t i = lo; i < hi; ++i) n += m.test(i) ? 1u : 0u;
  return n;
}

std::vector<PageMask::Run> ref_runs(const PageMask& m) {
  std::vector<PageMask::Run> out;
  std::uint32_t i = 0;
  while (i < kPagesPerBlock) {
    if (!m.test(i)) {
      ++i;
      continue;
    }
    std::uint32_t start = i;
    while (i < kPagesPerBlock && m.test(i)) ++i;
    out.push_back({start, i - start});
  }
  return out;
}

PageMask random_mask(Rng& rng, std::uint32_t density_pct) {
  PageMask m;
  for (std::uint32_t i = 0; i < kPagesPerBlock; ++i) {
    if (rng.next_below(100) < density_pct) m.set(i);
  }
  return m;
}

TEST(PageMask, StartsEmpty) {
  PageMask m;
  EXPECT_TRUE(m.none());
  EXPECT_EQ(m.count(), 0u);
  EXPECT_TRUE(m.runs().empty());
}

TEST(PageMask, SetAndTest) {
  PageMask m;
  m.set(0);
  m.set(511);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(511));
  EXPECT_FALSE(m.test(1));
  EXPECT_EQ(m.count(), 2u);
}

TEST(PageMask, SetRange) {
  PageMask m;
  m.set_range(10, 20);
  EXPECT_EQ(m.count(), 10u);
  EXPECT_FALSE(m.test(9));
  EXPECT_TRUE(m.test(10));
  EXPECT_TRUE(m.test(19));
  EXPECT_FALSE(m.test(20));
}

TEST(PageMask, CountRange) {
  PageMask m;
  m.set_range(0, 100);
  EXPECT_EQ(m.count_range(0, 50), 50u);
  EXPECT_EQ(m.count_range(50, 150), 50u);
  EXPECT_EQ(m.count_range(100, 512), 0u);
  EXPECT_EQ(m.count_range(30, 30), 0u);
}

TEST(PageMask, RunsDecomposition) {
  PageMask m;
  m.set_range(0, 3);
  m.set(10);
  m.set_range(500, 512);
  auto runs = m.runs();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (PageMask::Run{0, 3}));
  EXPECT_EQ(runs[1], (PageMask::Run{10, 1}));
  EXPECT_EQ(runs[2], (PageMask::Run{500, 12}));
}

TEST(PageMask, FullMaskSingleRun) {
  PageMask m;
  m.set_all();
  auto runs = m.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (PageMask::Run{0, 512}));
}

TEST(PageMask, AlternatingRuns) {
  PageMask m;
  for (std::uint32_t i = 0; i < 512; i += 2) m.set(i);
  EXPECT_EQ(m.runs().size(), 256u);
}

TEST(PageMask, SetIndices) {
  PageMask m;
  m.set(5);
  m.set(300);
  auto idx = m.set_indices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 5u);
  EXPECT_EQ(idx[1], 300u);
}

TEST(PageMask, BitwiseOperators) {
  PageMask a, b;
  a.set_range(0, 10);
  b.set_range(5, 15);
  EXPECT_EQ((a | b).count(), 15u);
  EXPECT_EQ((a & b).count(), 5u);
  EXPECT_EQ(a.and_not(b).count(), 5u);
  EXPECT_EQ((~a).count(), 502u);
}

TEST(PageMask, CompoundAssignment) {
  PageMask a, b;
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_EQ(a.count(), 2u);
  a &= b;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(2));
}

TEST(PageMask, Equality) {
  PageMask a, b;
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  b.set(8);
  EXPECT_FALSE(a == b);
}

TEST(PageMask, RangesAcrossWordBoundaries) {
  // Edges around word 0/1 (bit 64) and the final word (bits 448..511).
  PageMask m;
  m.set_range(60, 70);  // crosses the word 0 -> word 1 boundary
  EXPECT_EQ(m.count(), 10u);
  EXPECT_TRUE(m.test(63));
  EXPECT_TRUE(m.test(64));
  EXPECT_FALSE(m.test(70));
  EXPECT_EQ(m.count_range(0, 64), 4u);
  EXPECT_EQ(m.count_range(64, 128), 6u);
  EXPECT_EQ(m.count_range(63, 65), 2u);

  PageMask tail;
  tail.set_range(440, 512);  // crosses into the last word, ends at 511/512
  EXPECT_EQ(tail.count(), 72u);
  EXPECT_TRUE(tail.test(511));
  EXPECT_EQ(tail.count_range(448, 512), 64u);
  EXPECT_EQ(tail.count_range(511, 512), 1u);
  auto runs = tail.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (PageMask::Run{440, 72}));
}

TEST(PageMask, EmptyRangesAreNoOps) {
  PageMask m;
  m.set_range(7, 7);
  m.set_range(64, 64);
  m.set_range(512, 512);
  EXPECT_TRUE(m.none());
  m.set_range(0, 512);
  EXPECT_EQ(m.count_range(100, 100), 0u);
  EXPECT_EQ(m.count_range(512, 512), 0u);
}

TEST(PageMask, FullBlockRange) {
  PageMask m;
  m.set_range(0, kPagesPerBlock);
  EXPECT_EQ(m.count(), kPagesPerBlock);
  EXPECT_EQ(m.count_range(0, kPagesPerBlock), kPagesPerBlock);
  ASSERT_EQ(m.runs().size(), 1u);
  EXPECT_EQ(m.runs()[0], (PageMask::Run{0, kPagesPerBlock}));
}

TEST(PageMask, FindNextSetAndClear) {
  PageMask m;
  m.set(0);
  m.set(63);
  m.set(64);
  m.set(200);
  m.set(511);
  EXPECT_EQ(m.find_next_set(0), 0u);
  EXPECT_EQ(m.find_next_set(1), 63u);
  EXPECT_EQ(m.find_next_set(64), 64u);
  EXPECT_EQ(m.find_next_set(65), 200u);
  EXPECT_EQ(m.find_next_set(201), 511u);
  EXPECT_EQ(m.find_next_set(512), kPagesPerBlock);
  EXPECT_EQ(m.find_next_clear(0), 1u);
  EXPECT_EQ(m.find_next_clear(63), 65u);
  PageMask full;
  full.set_all();
  EXPECT_EQ(full.find_next_clear(0), kPagesPerBlock);
  EXPECT_EQ(full.find_next_set(511), 511u);
}

TEST(PageMask, SetBitsIteratorMatchesSetIndices) {
  Rng rng(101);
  for (std::uint32_t density : {0u, 1u, 10u, 50u, 95u, 100u}) {
    PageMask m = random_mask(rng, density);
    std::vector<std::uint32_t> via_iter;
    for (std::uint32_t i : m.set_bits()) via_iter.push_back(i);
    EXPECT_EQ(via_iter, m.set_indices());
  }
}

TEST(PageMask, RandomMasksMatchNaiveReference) {
  Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t density = static_cast<std::uint32_t>(
        rng.next_below(101));
    PageMask m = random_mask(rng, density);

    EXPECT_EQ(m.count(), ref_count_range(m, 0, kPagesPerBlock));
    EXPECT_EQ(m.runs(), ref_runs(m));

    // Random sub-ranges, biased to word boundaries.
    for (int k = 0; k < 8; ++k) {
      std::uint32_t lo = static_cast<std::uint32_t>(rng.next_below(513));
      std::uint32_t hi = static_cast<std::uint32_t>(rng.next_below(513));
      if (rng.next_below(2) == 0) lo = (lo / 64) * 64;
      if (lo > hi) std::swap(lo, hi);
      EXPECT_EQ(m.count_range(lo, hi), ref_count_range(m, lo, hi))
          << "lo=" << lo << " hi=" << hi;

      PageMask s;
      s.set_range(lo, hi);
      EXPECT_EQ(s.count(), hi - lo);
      EXPECT_EQ(s.count_range(lo, hi), hi - lo);
      if (lo > 0) {
        EXPECT_FALSE(s.test(lo - 1));
      }
      if (hi < kPagesPerBlock) {
        EXPECT_FALSE(s.test(hi));
      }
    }
  }
}

TEST(PageMask, ForEachRunMatchesRunsVector) {
  Rng rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    PageMask m = random_mask(
        rng, static_cast<std::uint32_t>(rng.next_below(101)));
    std::vector<PageMask::Run> collected;
    m.for_each_run([&collected](PageMask::Run r) { collected.push_back(r); });
    EXPECT_EQ(collected, ref_runs(m));
  }
}

TEST(PageMask, ClearAndReset) {
  PageMask m;
  m.set_range(0, 512);
  m.reset(100);
  EXPECT_EQ(m.count(), 511u);
  m.clear();
  EXPECT_TRUE(m.none());
}

}  // namespace
}  // namespace uvmsim
