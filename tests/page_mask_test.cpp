#include "mem/page_mask.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(PageMask, StartsEmpty) {
  PageMask m;
  EXPECT_TRUE(m.none());
  EXPECT_EQ(m.count(), 0u);
  EXPECT_TRUE(m.runs().empty());
}

TEST(PageMask, SetAndTest) {
  PageMask m;
  m.set(0);
  m.set(511);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(511));
  EXPECT_FALSE(m.test(1));
  EXPECT_EQ(m.count(), 2u);
}

TEST(PageMask, SetRange) {
  PageMask m;
  m.set_range(10, 20);
  EXPECT_EQ(m.count(), 10u);
  EXPECT_FALSE(m.test(9));
  EXPECT_TRUE(m.test(10));
  EXPECT_TRUE(m.test(19));
  EXPECT_FALSE(m.test(20));
}

TEST(PageMask, CountRange) {
  PageMask m;
  m.set_range(0, 100);
  EXPECT_EQ(m.count_range(0, 50), 50u);
  EXPECT_EQ(m.count_range(50, 150), 50u);
  EXPECT_EQ(m.count_range(100, 512), 0u);
  EXPECT_EQ(m.count_range(30, 30), 0u);
}

TEST(PageMask, RunsDecomposition) {
  PageMask m;
  m.set_range(0, 3);
  m.set(10);
  m.set_range(500, 512);
  auto runs = m.runs();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (PageMask::Run{0, 3}));
  EXPECT_EQ(runs[1], (PageMask::Run{10, 1}));
  EXPECT_EQ(runs[2], (PageMask::Run{500, 12}));
}

TEST(PageMask, FullMaskSingleRun) {
  PageMask m;
  m.set_all();
  auto runs = m.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (PageMask::Run{0, 512}));
}

TEST(PageMask, AlternatingRuns) {
  PageMask m;
  for (std::uint32_t i = 0; i < 512; i += 2) m.set(i);
  EXPECT_EQ(m.runs().size(), 256u);
}

TEST(PageMask, SetIndices) {
  PageMask m;
  m.set(5);
  m.set(300);
  auto idx = m.set_indices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 5u);
  EXPECT_EQ(idx[1], 300u);
}

TEST(PageMask, BitwiseOperators) {
  PageMask a, b;
  a.set_range(0, 10);
  b.set_range(5, 15);
  EXPECT_EQ((a | b).count(), 15u);
  EXPECT_EQ((a & b).count(), 5u);
  EXPECT_EQ(a.and_not(b).count(), 5u);
  EXPECT_EQ((~a).count(), 502u);
}

TEST(PageMask, CompoundAssignment) {
  PageMask a, b;
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_EQ(a.count(), 2u);
  a &= b;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(2));
}

TEST(PageMask, Equality) {
  PageMask a, b;
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  b.set(8);
  EXPECT_FALSE(a == b);
}

TEST(PageMask, ClearAndReset) {
  PageMask m;
  m.set_range(0, 512);
  m.reset(100);
  EXPECT_EQ(m.count(), 511u);
  m.clear();
  EXPECT_TRUE(m.none());
}

}  // namespace
}  // namespace uvmsim
