#include "mem/page_table.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest() : pt_(as_) { as_.create_range(2 * kVaBlockSize, "a"); }
  AddressSpace as_;
  PageTable pt_;
};

TEST_F(PageTableTest, TranslateMissByDefault) {
  EXPECT_FALSE(pt_.translate(0));
  EXPECT_FALSE(pt_.translate(600));
}

TEST_F(PageTableTest, MapMakesResident) {
  PageMask m;
  m.set_range(0, 4);
  pt_.map_pages(as_.block(0), m);
  EXPECT_TRUE(pt_.translate(0));
  EXPECT_TRUE(pt_.translate(3));
  EXPECT_FALSE(pt_.translate(4));
  EXPECT_EQ(pt_.pte_writes(), 4u);
  EXPECT_EQ(pt_.map_ops(), 1u);
}

TEST_F(PageTableTest, UnmapClearsResidency) {
  PageMask m;
  m.set_range(0, 8);
  pt_.map_pages(as_.block(0), m);
  PageMask u;
  u.set_range(0, 2);
  pt_.unmap_pages(as_.block(0), u);
  EXPECT_FALSE(pt_.translate(0));
  EXPECT_TRUE(pt_.translate(2));
  EXPECT_EQ(pt_.unmap_ops(), 1u);
  EXPECT_EQ(pt_.tlb_invalidates(), 1u);
  EXPECT_EQ(pt_.pte_writes(), 10u);
}

TEST_F(PageTableTest, BlocksAreIndependent) {
  PageMask m;
  m.set(0);
  pt_.map_pages(as_.block(0), m);
  EXPECT_TRUE(pt_.translate(0));
  EXPECT_FALSE(pt_.translate(kPagesPerBlock));  // same index, next block
}

}  // namespace
}  // namespace uvmsim
