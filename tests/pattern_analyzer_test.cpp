#include "core/pattern_analyzer.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  PatternTest() {
    // Range a: 1 page (pads its block to 512); range b: one full block.
    as_.create_range(kPageSize, "a");
    as_.create_range(kVaBlockSize, "b");
  }
  AddressSpace as_;
};

TEST_F(PatternTest, AdjustedIndexClosesGaps) {
  PatternAnalyzer pa(as_);
  // Range a page 0 -> adjusted 0.
  EXPECT_EQ(pa.adjusted_index(0), 0u);
  // Range b starts at block 1 (global page 512) but adjusted index 1:
  // the 511 padding pages of range a's block vanish.
  EXPECT_EQ(pa.adjusted_index(as_.range(1).first_page), 1u);
  EXPECT_EQ(pa.adjusted_index(as_.range(1).first_page + 100), 101u);
  EXPECT_EQ(pa.total_adjusted_pages(), 513u);
}

TEST_F(PatternTest, RangeBoundaries) {
  PatternAnalyzer pa(as_);
  const auto& b = pa.range_boundaries();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 1u);
}

TEST_F(PatternTest, PointsConvertLog) {
  PatternAnalyzer pa(as_);
  std::vector<FaultLogEntry> log;
  FaultLogEntry e;
  e.order = 0;
  e.page = as_.range(1).first_page + 5;
  e.kind = FaultLogKind::Fault;
  e.range = 1;
  log.push_back(e);
  e.order = 1;
  e.kind = FaultLogKind::Eviction;
  log.push_back(e);

  auto all = pa.points(log);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].adj_page, 6u);

  auto faults_only =
      pa.points(log, 1u << static_cast<int>(FaultLogKind::Fault));
  ASSERT_EQ(faults_only.size(), 1u);
  EXPECT_EQ(faults_only[0].kind, FaultLogKind::Fault);
}

TEST_F(PatternTest, AsciiScatterRenders) {
  PatternAnalyzer pa(as_);
  std::vector<PatternPoint> pts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    pts.push_back(PatternPoint{i, i * 10, FaultLogKind::Fault, 1});
  }
  pts.push_back(PatternPoint{25, 250, FaultLogKind::Eviction, 1});
  std::string art = pa.ascii_scatter(pts, 40, 10);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find('E'), std::string::npos);
  // 10 rows of 40 chars + newlines.
  EXPECT_EQ(art.size(), 10u * 41u);
}

TEST_F(PatternTest, AsciiScatterEmptyInput) {
  PatternAnalyzer pa(as_);
  EXPECT_EQ(pa.ascii_scatter({}, 10, 10), "");
}

TEST_F(PatternTest, InvalidPageAdjustsToZero) {
  PatternAnalyzer pa(as_);
  EXPECT_EQ(pa.adjusted_index(5), 0u);  // padding page of range a's block
}

}  // namespace
}  // namespace uvmsim
