#include <gtest/gtest.h>

#include "core/pattern_analyzer.h"
#include "sim/rng.h"

namespace uvmsim {
namespace {

std::vector<PatternPoint> points_from(
    const std::vector<std::pair<std::uint64_t, RangeId>>& seq) {
  std::vector<PatternPoint> out;
  std::uint64_t order = 0;
  for (auto [page, range] : seq) {
    out.push_back(PatternPoint{order++, page, FaultLogKind::Fault, range});
  }
  return out;
}

TEST(PatternStats, SequentialSweep) {
  std::vector<std::pair<std::uint64_t, RangeId>> seq;
  for (std::uint64_t p = 0; p < 200; ++p) seq.emplace_back(p, 0);
  PatternStats st = PatternAnalyzer::analyze(points_from(seq));
  EXPECT_GT(st.ordering, 0.99);
  EXPECT_GT(st.locality, 0.99);
  EXPECT_EQ(st.interleave, 0.0);
  EXPECT_EQ(st.classification(), PatternStats::Class::Sequential);
}

TEST(PatternStats, RandomScatter) {
  Rng rng(5);
  std::vector<std::pair<std::uint64_t, RangeId>> seq;
  for (int i = 0; i < 500; ++i) seq.emplace_back(rng.next_below(100000), 0);
  PatternStats st = PatternAnalyzer::analyze(points_from(seq));
  EXPECT_LT(std::abs(st.ordering), 0.15);
  EXPECT_LT(st.locality, 0.1);
  EXPECT_EQ(st.classification(), PatternStats::Class::Random);
}

TEST(PatternStats, BandedMultiRange) {
  // Three vectors swept together: a[i], b[i], c[i] interleave, each
  // strictly ordered within its range.
  std::vector<std::pair<std::uint64_t, RangeId>> seq;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seq.emplace_back(i, 0);
    seq.emplace_back(1000 + i, 1);
    seq.emplace_back(2000 + i, 2);
  }
  PatternStats st = PatternAnalyzer::analyze(points_from(seq));
  EXPECT_GT(st.ordering, 0.99);
  EXPECT_GT(st.interleave, 0.6);
  EXPECT_EQ(st.classification(), PatternStats::Class::Banded);
}

TEST(PatternStats, ReverseSweepHasNegativeOrdering) {
  std::vector<std::pair<std::uint64_t, RangeId>> seq;
  for (std::uint64_t p = 200; p-- > 0;) seq.emplace_back(p, 0);
  PatternStats st = PatternAnalyzer::analyze(points_from(seq));
  EXPECT_LT(st.ordering, -0.99);
  EXPECT_GT(st.locality, 0.9);  // still local, just descending
}

TEST(PatternStats, TinyInputIsMixed) {
  std::vector<std::pair<std::uint64_t, RangeId>> seq = {{1, 0}, {2, 0}};
  PatternStats st = PatternAnalyzer::analyze(points_from(seq));
  EXPECT_EQ(st.classification(), PatternStats::Class::Mixed);
}

TEST(PatternStats, EmptyInput) {
  PatternStats st = PatternAnalyzer::analyze({});
  EXPECT_EQ(st.samples, 0u);
  EXPECT_EQ(st.ordering, 0.0);
}

TEST(PatternStats, ClassNames) {
  EXPECT_STREQ(PatternStats::to_string(PatternStats::Class::Sequential),
               "sequential");
  EXPECT_STREQ(PatternStats::to_string(PatternStats::Class::Random),
               "random");
  EXPECT_STREQ(PatternStats::to_string(PatternStats::Class::Banded),
               "banded");
  EXPECT_STREQ(PatternStats::to_string(PatternStats::Class::Mixed), "mixed");
}

}  // namespace
}  // namespace uvmsim
