// Pipelined-migration extension tests.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/regular.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

SimConfig cfg(bool pipelined) {
  SimConfig c;
  c.set_gpu_memory(32ull << 20);
  c.enable_fault_log = false;
  c.driver.pipelined_migrations = pipelined;
  return c;
}

RunResult run(bool pipelined, std::uint64_t bytes = 8ull << 20) {
  Simulator sim(cfg(pipelined));
  RegularTouch wl(bytes);
  wl.setup(sim);
  return sim.run();
}

TEST(PipelinedMigration, SameFaultAndPageAccounting) {
  RunResult blocking = run(false);
  RunResult pipelined = run(true);
  // The data plane is identical — only timing changes.
  EXPECT_EQ(blocking.counters.pages_migrated_h2d,
            pipelined.counters.pages_migrated_h2d);
  EXPECT_EQ(blocking.bytes_h2d, pipelined.bytes_h2d);
  EXPECT_EQ(blocking.resident_pages_at_end, pipelined.resident_pages_at_end);
}

TEST(PipelinedMigration, OverlapSpeedsUpTheRun) {
  EXPECT_LT(run(true).total_kernel_time(), run(false).total_kernel_time());
}

TEST(PipelinedMigration, DriverBusyTimeDrops) {
  // Migration wait leaves the driver's busy time; the issue cost stays.
  RunResult blocking = run(false);
  RunResult pipelined = run(true);
  EXPECT_LT(pipelined.profiler.total(CostCategory::ServiceMigrate),
            blocking.profiler.total(CostCategory::ServiceMigrate) / 4);
}

TEST(PipelinedMigration, KernelTimeBoundedBelowByTransferTime) {
  // Replays wait for data: the run can never finish before the wire time
  // of the data it moved.
  RunResult r = run(true);
  SimConfig c = cfg(true);
  Interconnect link(c.interconnect);
  EXPECT_GE(r.end_time, link.transfer_time(r.bytes_h2d));
}

TEST(PipelinedMigration, WorksUnderOversubscription) {
  SimConfig c = cfg(true);
  c.set_gpu_memory(16ull << 20);
  Simulator sim(c);
  auto wl = make_workload("regular", 24ull << 20);
  wl->setup(sim);
  RunResult r = sim.run();
  EXPECT_GT(r.counters.evictions, 0u);
  EXPECT_LE(r.resident_pages_at_end * kPageSize, c.gpu_memory());
}

TEST(PipelinedMigration, Deterministic) {
  EXPECT_EQ(run(true).end_time, run(true).end_time);
}

}  // namespace
}  // namespace uvmsim
