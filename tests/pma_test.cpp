#include "mem/pma.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

PhysicalMemoryAllocator::Config small_cfg() {
  PhysicalMemoryAllocator::Config c;
  c.capacity_bytes = 16ull << 21;  // 16 chunks of 2 MiB
  c.chunk_bytes = 2ull << 20;
  c.slab_chunks = 4;
  return c;
}

TEST(Pma, FirstAllocGoesToRm) {
  PhysicalMemoryAllocator pma(small_cfg());
  auto res = pma.alloc_chunk();
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.rm_calls, 1u);
  EXPECT_EQ(pma.rm_calls(), 1u);
  EXPECT_EQ(pma.chunks_in_use(), 1u);
  EXPECT_EQ(pma.cached_chunks(), 3u);  // slab of 4, 1 used
}

TEST(Pma, SubsequentAllocsHitCache) {
  PhysicalMemoryAllocator pma(small_cfg());
  pma.alloc_chunk();
  for (int i = 0; i < 3; ++i) {
    auto res = pma.alloc_chunk();
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.rm_calls, 0u);
  }
  EXPECT_EQ(pma.rm_calls(), 1u);
  // Cache drained: next alloc calls RM again.
  EXPECT_EQ(pma.alloc_chunk().rm_calls, 1u);
  EXPECT_EQ(pma.rm_calls(), 2u);
}

TEST(Pma, SlabClampedToRemainingCapacity) {
  auto cfg = small_cfg();
  cfg.slab_chunks = 100;  // bigger than total capacity
  PhysicalMemoryAllocator pma(cfg);
  auto res = pma.alloc_chunk();
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(pma.cached_chunks(), 15u);  // 16 total - 1 in use
}

TEST(Pma, ExhaustionReturnsNotOk) {
  PhysicalMemoryAllocator pma(small_cfg());
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(pma.alloc_chunk().ok);
  EXPECT_TRUE(pma.exhausted());
  auto res = pma.alloc_chunk();
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(pma.chunks_in_use(), 16u);
}

TEST(Pma, FreeEnablesRealloc) {
  PhysicalMemoryAllocator pma(small_cfg());
  for (int i = 0; i < 16; ++i) pma.alloc_chunk();
  pma.free_chunk();
  EXPECT_FALSE(pma.exhausted());
  auto res = pma.alloc_chunk();
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.rm_calls, 0u);  // came from the freed cache
}

TEST(Pma, FreeWithoutAllocThrows) {
  PhysicalMemoryAllocator pma(small_cfg());
  EXPECT_THROW(pma.free_chunk(), std::logic_error);
}

TEST(Pma, InvalidConfigThrows) {
  PhysicalMemoryAllocator::Config c;
  c.capacity_bytes = 1024;
  c.chunk_bytes = 2048;
  EXPECT_THROW(PhysicalMemoryAllocator{c}, std::invalid_argument);
  c.chunk_bytes = 0;
  EXPECT_THROW(PhysicalMemoryAllocator{c}, std::invalid_argument);
  c = {};
  c.slab_chunks = 0;
  EXPECT_THROW(PhysicalMemoryAllocator{c}, std::invalid_argument);
}

TEST(Pma, AllocCountTracksServedAllocations) {
  PhysicalMemoryAllocator pma(small_cfg());
  for (int i = 0; i < 10; ++i) pma.alloc_chunk();
  EXPECT_EQ(pma.allocs(), 10u);
}

TEST(Pma, TotalChunksDerivedFromCapacity) {
  PhysicalMemoryAllocator pma(small_cfg());
  EXPECT_EQ(pma.total_chunks(), 16u);
}

}  // namespace
}  // namespace uvmsim
