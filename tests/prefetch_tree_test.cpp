#include "uvm/prefetch_tree.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

PageMask mask_of(std::initializer_list<std::uint32_t> pages) {
  PageMask m;
  for (auto p : pages) m.set(p);
  return m;
}

PageMask range_mask(std::uint32_t lo, std::uint32_t hi) {
  PageMask m;
  m.set_range(lo, hi);
  return m;
}

TEST(PrefetchTree, CountsBuildBottomUp) {
  PrefetchTree t(range_mask(0, 256), kPagesPerBlock);
  EXPECT_EQ(t.count(0, 0), 256u);                 // root
  EXPECT_EQ(t.count(1, 0), 256u);                 // left half full
  EXPECT_EQ(t.count(1, 1), 0u);                   // right half empty
  EXPECT_EQ(t.count(PrefetchTree::kLevels - 1, 0), 1u);  // leaf
}

TEST(PrefetchTree, ValidCountsClampToPartialBlock) {
  PrefetchTree t(PageMask{}, 100);
  EXPECT_EQ(t.valid(0, 0), 100u);
  EXPECT_EQ(t.valid(1, 0), 100u);  // left 256-subtree holds all 100
  EXPECT_EQ(t.valid(1, 1), 0u);
  EXPECT_EQ(t.valid(PrefetchTree::kLevels - 1, 99), 1u);
  EXPECT_EQ(t.valid(PrefetchTree::kLevels - 1, 100), 0u);
}

TEST(PrefetchTree, InvalidConstructionThrows) {
  EXPECT_THROW(PrefetchTree(PageMask{}, 0), std::invalid_argument);
  EXPECT_THROW(PrefetchTree(PageMask{}, kPagesPerBlock + 1),
               std::invalid_argument);
}

TEST(PrefetchTree, ExpandOutOfRangeThrows) {
  PrefetchTree t(mask_of({0}), 10);
  EXPECT_THROW(t.expand(10, 51), std::invalid_argument);
}

TEST(PrefetchTree, IsolatedFaultExpandsOnlyItself) {
  // One occupied leaf in an empty block: no subtree above the leaf can
  // exceed 51 % density, so the region is the leaf alone.
  PrefetchTree t(mask_of({100}), kPagesPerBlock);
  PageMask region = t.expand(100, 51);
  EXPECT_EQ(region.count(), 1u);
  EXPECT_TRUE(region.test(100));
}

TEST(PrefetchTree, DensePairExpandsSubtree) {
  // Both children of a 2-leaf subtree occupied: 100 % > 51 %, and the
  // 4-leaf subtree is at 50 % which does NOT exceed 51 %.
  PrefetchTree t(mask_of({8, 9}), kPagesPerBlock);
  PageMask region = t.expand(8, 51);
  EXPECT_EQ(region.count(), 2u);
  EXPECT_TRUE(region.test(8));
  EXPECT_TRUE(region.test(9));
}

TEST(PrefetchTree, PicksLargestQualifyingSubtree) {
  // Fill 5 of the first 8 leaves: 62.5 % > 51 % at the 8-leaf level, while
  // the 16-leaf level is at 31 %.
  PrefetchTree t(mask_of({0, 1, 2, 3, 4}), kPagesPerBlock);
  PageMask region = t.expand(0, 51);
  EXPECT_EQ(region.count(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_TRUE(region.test(i));
}

TEST(PrefetchTree, SaturationCascades) {
  // After expanding leaves 0-4 to the 8-leaf subtree, occupancy rises; an
  // additional fault at leaf 8 now sees the 16-leaf subtree at
  // (8 + 1)/16 = 56 % > 51 % and expands to 16 leaves.
  PrefetchTree t(mask_of({0, 1, 2, 3, 4, 8}), kPagesPerBlock);
  PageMask first = t.expand(0, 51);
  EXPECT_EQ(first.count(), 8u);
  PageMask second = t.expand(8, 51);
  EXPECT_EQ(second.count(), 16u);
}

TEST(PrefetchTree, FullBlockFromRoot) {
  // More than 51 % of the whole block occupied: a single fault expands to
  // the entire block.
  PrefetchTree t(range_mask(0, 262), kPagesPerBlock);  // 262/512 = 51.2 %
  PageMask region = t.expand(0, 51);
  EXPECT_EQ(region.count(), 512u);
}

TEST(PrefetchTree, ThresholdIsStrict) {
  // Exactly 51.17 % fails a 52 threshold but passes 51.
  PrefetchTree a(range_mask(0, 262), kPagesPerBlock);
  EXPECT_EQ(a.expand(0, 52).count(), 256u);  // falls back to half (100 %)
  PrefetchTree b(range_mask(0, 262), kPagesPerBlock);
  EXPECT_EQ(b.expand(0, 51).count(), 512u);
}

TEST(PrefetchTree, Threshold100NeverExpandsBeyondLeafUnlessFull) {
  PrefetchTree t(range_mask(0, 511), kPagesPerBlock);
  // 511/512 < 100 % at the root; the 256-leaf left subtree IS 100 % but
  // 100 % is not strictly greater than 100.
  PageMask region = t.expand(0, 100);
  EXPECT_EQ(region.count(), 1u);
}

TEST(PrefetchTree, PartialBlockDensityUsesValidLeaves) {
  // Block with 64 valid pages, 40 occupied (62 %): a fault expands to the
  // full 64 valid pages (the 64-leaf subtree density is 40/64 > 51 %), and
  // never past the valid range.
  PrefetchTree t(range_mask(0, 40), 64);
  PageMask region = t.expand(0, 51);
  EXPECT_EQ(region.count(), 64u);
  for (std::uint32_t i = 64; i < kPagesPerBlock; ++i) {
    EXPECT_FALSE(region.test(i));
  }
}

TEST(PrefetchTree, ComputeReturnsOnlyNewPages) {
  PageMask occupied = range_mask(0, 5);
  PageMask faulted = mask_of({0, 1, 2, 3, 4});
  PageMask out = PrefetchTree::compute(occupied, faulted, kPagesPerBlock, 51);
  // Expands to the 8-leaf subtree; pages 0-4 already occupied.
  EXPECT_EQ(out.count(), 3u);
  EXPECT_TRUE(out.test(5));
  EXPECT_TRUE(out.test(7));
}

TEST(PrefetchTree, ComputeEmptyFaultsIsEmpty) {
  PageMask out =
      PrefetchTree::compute(range_mask(0, 100), PageMask{}, kPagesPerBlock, 51);
  EXPECT_TRUE(out.none());
}

TEST(PrefetchTree, PaperFigure6Scenario) {
  // Fig. 6 uses a 4-level (16-leaf) illustration at 51 %. We reproduce the
  // idea at full scale: a 16-leaf subtree with 9 occupied leaves (56 %)
  // expands from any faulted leaf in it.
  PageMask occ = range_mask(16, 25);  // 9 leaves of big page 1
  PrefetchTree t(occ, kPagesPerBlock);
  PageMask region = t.expand(16, 51);
  EXPECT_EQ(region.count(), 16u);
  for (std::uint32_t i = 16; i < 32; ++i) EXPECT_TRUE(region.test(i));
}

// --- Parameterized sweep: occupancy fraction x threshold ---

struct SweepParam {
  std::uint32_t occupied_leaves;  // of the first 64-leaf subtree
  std::uint32_t threshold;
  std::uint32_t expected_region;  // expand(0) region size
};

class TreeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TreeSweep, RegionMatchesDensityRule) {
  const auto& p = GetParam();
  PrefetchTree t(range_mask(0, p.occupied_leaves), kPagesPerBlock);
  PageMask region = t.expand(0, p.threshold);
  EXPECT_EQ(region.count(), p.expected_region)
      << "occupied=" << p.occupied_leaves << " threshold=" << p.threshold;
}

// Expected values derived from the rule: walking root->leaf, the first
// subtree (sizes 512,256,...,1) whose occupancy strictly exceeds
// threshold% of its size wins. Occupied leaves fill from index 0, so the
// subtree of size S containing leaf 0 holds min(occ, S) occupied leaves.
INSTANTIATE_TEST_SUITE_P(
    DensityRule, TreeSweep,
    ::testing::Values(
        // 32 occupied leaves: 64-subtree at 50 % fails 51; 32-subtree 100 %.
        SweepParam{32, 51, 32},
        // 33: 64-subtree 51.6 % > 51.
        SweepParam{33, 51, 64},
        // 66: 128-subtree 51.6 %.
        SweepParam{66, 51, 128},
        // 131: 256-subtree 51.2 %.
        SweepParam{131, 51, 256},
        // 263: root 51.4 %.
        SweepParam{263, 51, 512},
        // Aggressive 1 %: even 6 leaves tip the root (6/512 = 1.17 %).
        SweepParam{6, 1, 512},
        // 1 % but only 5 leaves: root at 0.98 % fails; 256-subtree at
        // 1.95 % passes.
        SweepParam{5, 1, 256},
        // Conservative 90 %: 32 leaves -> 32-subtree at 100 %.
        SweepParam{32, 90, 32},
        // 90 % with 58/64: 90.6 % > 90.
        SweepParam{58, 90, 64}));

}  // namespace
}  // namespace uvmsim
