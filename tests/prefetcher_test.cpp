#include "uvm/prefetcher.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace uvmsim {
namespace {

VaBlock make_block(std::uint32_t num_pages = kPagesPerBlock) {
  VaBlock b;
  b.range = 0;
  b.num_pages = num_pages;
  return b;
}

PageMask mask_of(std::initializer_list<std::uint32_t> pages) {
  PageMask m;
  for (auto p : pages) m.set(p);
  return m;
}

TEST(Prefetcher, BigPageUpgradeAlone) {
  VaBlock b = make_block();
  // Density stage disabled (threshold > 100): only the 64 KB upgrade runs.
  auto res = Prefetcher::compute(b, mask_of({5}), /*big_page_upgrade=*/true,
                                 /*threshold=*/101);
  // Pages 0-15 minus the faulted page 5.
  EXPECT_EQ(res.prefetch.count(), 15u);
  EXPECT_FALSE(res.prefetch.test(5));
  EXPECT_TRUE(res.prefetch.test(0));
  EXPECT_TRUE(res.prefetch.test(15));
  EXPECT_FALSE(res.prefetch.test(16));
  EXPECT_EQ(res.tree_updates, 0u);
}

TEST(Prefetcher, NoUpgradeNoTreeMeansNothing) {
  VaBlock b = make_block();
  auto res = Prefetcher::compute(b, mask_of({5}), false, 101);
  EXPECT_TRUE(res.prefetch.none());
}

TEST(Prefetcher, UpgradeRespectsPartialBlocks) {
  VaBlock b = make_block(10);  // only 10 valid pages
  auto res = Prefetcher::compute(b, mask_of({5}), true, 101);
  EXPECT_EQ(res.prefetch.count(), 9u);  // pages 0-9 minus the fault
  EXPECT_FALSE(res.prefetch.test(10));
}

TEST(Prefetcher, UpgradeFeedsDensityStage) {
  VaBlock b = make_block();
  // One fault in each of the two big pages of a 32-leaf subtree: upgrades
  // occupy 32 leaves; the 32-subtree is 100 % and the 64-subtree is 50 %,
  // so the region is those 32 pages. (Paper: "each fault fetches the entire
  // corresponding level five subtree", and five such faults cover a block.)
  auto res = Prefetcher::compute(b, mask_of({0, 16}), true, 51);
  EXPECT_EQ(res.prefetch.count(), 30u);  // 32 minus the 2 faulted
  EXPECT_TRUE(res.prefetch.test(31));
  EXPECT_FALSE(res.prefetch.test(32));
  EXPECT_EQ(res.tree_updates, 2u);
}

TEST(Prefetcher, ScatteredFaultsUpgradeWithoutCascade) {
  VaBlock b = make_block();
  // One fault per 64-page region: upgrades occupy 8 x 16 = 128 leaves, but
  // each 32-leaf subtree is at exactly 50 % (not > 51 %), so the density
  // stage adds nothing beyond the upgrades.
  PageMask faults;
  for (std::uint32_t i = 0; i < 512; i += 64) faults.set(i);
  auto res = Prefetcher::compute(b, faults, true, 51);
  EXPECT_EQ(res.prefetch.count(), 128u - 8u);
}

TEST(Prefetcher, CascadeAcrossBatchesFillsBlock) {
  // Residency accumulated over successive batches tips ever-larger
  // subtrees: scattered faults eventually fetch the whole VABlock with far
  // fewer faults than pages (paper §IV-A's cascade).
  VaBlock b = make_block();
  std::uint32_t faults_needed = 0;
  for (std::uint32_t leaf = 0; leaf < 512 && !b.fully_resident();
       leaf += 24) {
    PageMask f;
    f.set(leaf % 512);
    auto res = Prefetcher::compute(b, f, true, 51);
    b.gpu_resident |= f;
    b.gpu_resident |= res.prefetch;
    ++faults_needed;
  }
  EXPECT_TRUE(b.fully_resident());
  EXPECT_LE(faults_needed, 20u);  // 512 pages from <= 20 faults
}

TEST(Prefetcher, ResidentPagesExcludedFromResult) {
  VaBlock b = make_block();
  b.gpu_resident.set_range(0, 8);
  auto res = Prefetcher::compute(b, mask_of({8}), true, 101);
  // Big page 0 upgrade: pages 0-15, minus resident 0-7 and fault 8.
  EXPECT_EQ(res.prefetch.count(), 7u);
  EXPECT_TRUE(res.prefetch.test(9));
  EXPECT_FALSE(res.prefetch.test(0));
}

TEST(Prefetcher, ResidencyCountsTowardDensity) {
  VaBlock b = make_block();
  b.gpu_resident.set_range(0, 260);  // 50.8 % of the block resident
  // A fault at 300 upgrades big page 18 (288-303, 16 pages): occupancy
  // 260 + 16 = 276/512 = 53.9 % > 51 % -> whole block.
  auto res = Prefetcher::compute(b, mask_of({300}), true, 51);
  EXPECT_EQ(res.prefetch.count(), 512u - 260u - 1u);
}

TEST(Prefetcher, EmptyFaultSetIsEmpty) {
  VaBlock b = make_block();
  auto res = Prefetcher::compute(b, PageMask{}, true, 51);
  EXPECT_TRUE(res.prefetch.none());
}

TEST(Prefetcher, AggressiveThresholdFetchesBlockFromOneFault) {
  VaBlock b = make_block();
  auto res = Prefetcher::compute(b, mask_of({0}), true, 1);
  // Upgrade occupies 16/512 = 3.1 % > 1 % at the root.
  EXPECT_EQ(res.prefetch.count(), 511u);
}

// Parameterized: threshold sweep on a fixed scattered-fault pattern.
class ThresholdSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdSweep, PrefetchVolumeDecreasesWithThreshold) {
  VaBlock b = make_block();
  PageMask faults;
  for (std::uint32_t i = 0; i < 512; i += 128) faults.set(i);
  auto res = Prefetcher::compute(b, faults, true, GetParam());
  // Store volume for monotonicity check across instantiations via
  // a simple recomputation at the next-lower threshold.
  if (GetParam() > 1) {
    auto more = Prefetcher::compute(b, faults, true, GetParam() - 25);
    EXPECT_GE(more.prefetch.count(), res.prefetch.count());
  }
  // Never prefetches faulted or out-of-range pages.
  EXPECT_TRUE((res.prefetch & faults).none());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(1u, 26u, 51u, 76u, 100u));

TEST(Prefetcher, ComputeFastMatchesReferenceOnRandomInputs) {
  // Differential property test for the lane pipeline's word-level
  // implementation: compute_fast must return the exact Result of the
  // tree-building reference for every (residency, fault set, block size,
  // threshold, upgrade) combination. Random sweep over the whole input
  // space, including partial blocks where the valid clamp matters.
  Rng rng(2024);
  const std::uint32_t sizes[] = {kPagesPerBlock, 511, 100, 17, 1};
  const std::uint32_t thresholds[] = {1, 25, 51, 75, 100, 101};
  for (int trial = 0; trial < 150; ++trial) {
    VaBlock b = make_block(sizes[trial % 5]);
    PageMask faulted;
    // Residency density varies per trial so both sparse and near-saturated
    // density trees get exercised.
    const std::uint64_t resident_pct = rng.next_below(90);
    for (std::uint32_t p = 0; p < b.num_pages; ++p) {
      if (rng.next_below(100) < resident_pct) b.gpu_resident.set(p);
    }
    for (std::uint32_t p = 0; p < b.num_pages; ++p) {
      // Driver invariant: the prefetcher sees need = faulted minus mapped.
      if (!b.gpu_resident.test(p) && rng.next_below(100) < 20) faulted.set(p);
    }
    for (std::uint32_t th : thresholds) {
      for (bool upgrade : {false, true}) {
        auto ref = Prefetcher::compute(b, faulted, upgrade, th);
        auto fast = Prefetcher::compute_fast(b, faulted, upgrade, th);
        ASSERT_EQ(ref.prefetch, fast.prefetch)
            << "num_pages=" << b.num_pages << " threshold=" << th
            << " upgrade=" << upgrade << " trial=" << trial;
        ASSERT_EQ(ref.tree_updates, fast.tree_updates)
            << "num_pages=" << b.num_pages << " threshold=" << th
            << " upgrade=" << upgrade << " trial=" << trial;
      }
    }
  }
}

}  // namespace
}  // namespace uvmsim
