#include "core/profiler.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Profiler, StartsEmpty) {
  Profiler p;
  EXPECT_EQ(p.grand_total(), 0u);
  EXPECT_EQ(p.total(CostCategory::PreProcess), 0u);
  EXPECT_EQ(p.count(CostCategory::PreProcess), 0u);
}

TEST(Profiler, AccumulatesPerCategory) {
  Profiler p;
  p.add(CostCategory::PreProcess, 10);
  p.add(CostCategory::PreProcess, 5);
  p.add(CostCategory::ServiceMigrate, 100);
  EXPECT_EQ(p.total(CostCategory::PreProcess), 15u);
  EXPECT_EQ(p.count(CostCategory::PreProcess), 2u);
  EXPECT_EQ(p.total(CostCategory::ServiceMigrate), 100u);
  EXPECT_EQ(p.grand_total(), 115u);
}

TEST(Profiler, ServiceTotalSumsSubcategories) {
  Profiler p;
  p.add(CostCategory::ServicePmaAlloc, 1);
  p.add(CostCategory::ServiceZero, 2);
  p.add(CostCategory::ServiceMigrate, 4);
  p.add(CostCategory::ServiceMap, 8);
  p.add(CostCategory::ServiceOther, 16);
  p.add(CostCategory::PreProcess, 1000);  // not a service category
  EXPECT_EQ(p.service_total(), 31u);
}

TEST(Profiler, SinceComputesWindowDeltas) {
  Profiler p;
  p.add(CostCategory::Eviction, 50);
  Profiler snapshot = p;
  p.add(CostCategory::Eviction, 25);
  p.add(CostCategory::ReplayPolicy, 10);
  Profiler delta = p.since(snapshot);
  EXPECT_EQ(delta.total(CostCategory::Eviction), 25u);
  EXPECT_EQ(delta.total(CostCategory::ReplayPolicy), 10u);
  EXPECT_EQ(delta.count(CostCategory::Eviction), 1u);
}

TEST(Profiler, CategoryNames) {
  EXPECT_EQ(to_string(CostCategory::PreProcess), "pre_process");
  EXPECT_EQ(to_string(CostCategory::ServicePmaAlloc), "pma_alloc_pages");
  EXPECT_EQ(to_string(CostCategory::ServiceMigrate), "migrate_pages");
  EXPECT_EQ(to_string(CostCategory::ServiceMap), "map_pages");
  EXPECT_EQ(to_string(CostCategory::ReplayPolicy), "replay_policy");
  EXPECT_EQ(to_string(CostCategory::Eviction), "eviction");
}

}  // namespace
}  // namespace uvmsim
