// Cross-cutting property tests: system-level invariants that must hold for
// every (workload, replay policy, prefetch setting) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulator.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

using Param = std::tuple<std::string, ReplayPolicyKind, bool>;

class SystemProperties : public ::testing::TestWithParam<Param> {
 protected:
  static SimConfig config(ReplayPolicyKind policy, bool prefetch) {
    SimConfig cfg;
    cfg.set_gpu_memory(24ull << 20);
    cfg.driver.replay_policy = policy;
    cfg.driver.prefetch_enabled = prefetch;
    cfg.enable_fault_log = false;
    return cfg;
  }
};

TEST_P(SystemProperties, InvariantsHold) {
  auto [name, policy, prefetch] = GetParam();
  SimConfig cfg = config(policy, prefetch);

  Simulator sim(cfg);
  auto wl = make_workload(name, 8ull << 20);  // undersubscribed
  wl->setup(sim);
  RunResult r = sim.run();

  // 1. Liveness: every kernel completed (run() throws otherwise).
  ASSERT_GE(r.kernels.size(), 1u);

  // 2. Residency never exceeds physical capacity.
  EXPECT_LE(r.resident_pages_at_end * kPageSize, cfg.gpu_memory());

  // 3. PMA accounting is consistent with block backing.
  std::uint64_t backed_bytes = 0;
  for (std::size_t b = 0; b < sim.address_space().num_blocks(); ++b) {
    backed_bytes += sim.address_space().block(b).backing.backed_bytes();
  }
  EXPECT_EQ(backed_bytes, sim.pma().bytes_in_use());

  // 4. Interconnect bytes match page movement exactly.
  EXPECT_EQ(r.bytes_h2d,
            (r.counters.pages_migrated_h2d) * kPageSize);
  EXPECT_EQ(r.bytes_d2h, r.counters.pages_evicted * kPageSize);

  // 5. Fault conservation: everything fetched is accounted for.
  EXPECT_EQ(r.counters.faults_fetched,
            r.counters.faults_serviced + r.counters.duplicate_faults +
                r.counters.stale_faults);

  // 6. Undersubscribed: no evictions, no writeback.
  EXPECT_EQ(r.counters.evictions, 0u);
  EXPECT_EQ(r.counters.pages_evicted, 0u);

  // 7. Prefetch accounting.
  if (!prefetch) {
    EXPECT_EQ(r.counters.pages_prefetched, 0u);
  }
  EXPECT_LE(r.wasted_prefetch_at_end, r.counters.pages_prefetched);

  // 8. Driver did real, categorized work.
  EXPECT_GT(r.profiler.grand_total(), 0u);
  EXPECT_GT(r.profiler.total(CostCategory::PreProcess), 0u);
  EXPECT_GT(r.profiler.service_total(), 0u);

  // 9. Replays were issued (any policy must unblock warps).
  EXPECT_GT(r.counters.replays_issued, 0u);

  // 10. Flushes only under the flush policy.
  if (policy == ReplayPolicyKind::BatchFlush) {
    EXPECT_GT(r.counters.buffer_flushes, 0u);
  } else {
    EXPECT_EQ(r.counters.buffer_flushes, 0u);
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  auto [name, policy, prefetch] = info.param;
  return name + "_" + to_string(policy) + (prefetch ? "_pf" : "_nopf");
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SystemProperties,
    ::testing::Combine(::testing::ValuesIn(workload_names()),
                       ::testing::Values(ReplayPolicyKind::Block,
                                         ReplayPolicyKind::Batch,
                                         ReplayPolicyKind::BatchFlush,
                                         ReplayPolicyKind::Once),
                       ::testing::Bool()),
    param_name);

// --- oversubscription properties on the cheap workloads ---

class OversubProperties
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(OversubProperties, InvariantsHoldUnderEviction) {
  auto [name, ratio] = GetParam();
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  cfg.enable_fault_log = false;
  auto target = static_cast<std::uint64_t>(
      ratio * static_cast<double>(cfg.gpu_memory()));

  Simulator sim(cfg);
  auto wl = make_workload(name, target);
  wl->setup(sim);
  RunResult r = sim.run();

  EXPECT_LE(r.resident_pages_at_end * kPageSize, cfg.gpu_memory());
  EXPECT_GT(r.counters.evictions, 0u);
  EXPECT_EQ(r.bytes_d2h, r.counters.pages_evicted * kPageSize);
  // Thrash amplification: more data crossed H2D than the footprint.
  EXPECT_GE(r.bytes_h2d, r.total_bytes);
  // Eviction work was accounted.
  EXPECT_GT(r.profiler.total(CostCategory::Eviction), 0u);
  EXPECT_GT(r.counters.service_restarts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, OversubProperties,
    ::testing::Combine(::testing::Values("regular", "stream", "sgemm"),
                       ::testing::Values(1.2, 1.5)),
    [](const auto& pinfo) {
      return std::get<0>(pinfo.param) + "_" +
             std::to_string(static_cast<int>(std::get<1>(pinfo.param) * 100));
    });

}  // namespace
}  // namespace uvmsim
