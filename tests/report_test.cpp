#include "core/report.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Table, TextRenderingAligned) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long_name", "22"});
  std::string s = t.to_text();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long_name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::string s = t.to_csv();
  EXPECT_EQ(s, "csv,a,b\ncsv,1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only_one"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
  EXPECT_EQ(fmt(1000000.0, 4), "1e+06");
  EXPECT_EQ(fmt(0.0), "0");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(fmt(std::uint64_t{0}), "0");
}

}  // namespace
}  // namespace uvmsim
