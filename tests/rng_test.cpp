#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace uvmsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = r.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NextRangeBadBoundsThrow) {
  Rng r(13);
  EXPECT_THROW(r.next_range(3, 2), std::invalid_argument);
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = r.next_gaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, PermutationIsValid) {
  Rng r(19);
  auto p = r.permutation(1000);
  ASSERT_EQ(p.size(), 1000u);
  auto sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually permutes (not identity).
  EXPECT_NE(p, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  // Child stream differs from parent's subsequent output.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(29), b(29);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace uvmsim
