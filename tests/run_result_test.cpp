#include "core/run_result.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

RunResult sample() {
  RunResult r;
  KernelStats k1;
  k1.launched_at = 100;
  k1.completed_at = 1100;
  k1.faults_raised = 10;
  k1.work_units = 1e6;
  KernelStats k2;
  k2.launched_at = 2000;
  k2.completed_at = 3000;
  k2.faults_raised = 5;
  k2.work_units = 2e6;
  r.kernels = {k1, k2};
  r.total_bytes = 96ull << 20;
  r.gpu_capacity_bytes = 64ull << 20;
  r.counters.pages_evicted = 30;
  return r;
}

TEST(RunResult, TotalKernelTimeSums) {
  EXPECT_EQ(sample().total_kernel_time(), 2000u);
}

TEST(RunResult, TotalFaultsRaised) {
  EXPECT_EQ(sample().total_faults_raised(), 15u);
}

TEST(RunResult, Oversubscription) {
  EXPECT_DOUBLE_EQ(sample().oversubscription(), 1.5);
  RunResult empty;
  EXPECT_EQ(empty.oversubscription(), 0.0);
}

TEST(RunResult, ComputeRate) {
  // 3e6 work units over 2000 ns = 1.5e12 units/s.
  EXPECT_NEAR(sample().compute_rate(), 1.5e12, 1e6);
  RunResult empty;
  EXPECT_EQ(empty.compute_rate(), 0.0);
}

TEST(RunResult, EvictionsPerFault) {
  EXPECT_DOUBLE_EQ(sample().evictions_per_fault(), 2.0);
  RunResult none;
  EXPECT_EQ(none.evictions_per_fault(), 0.0);
}

TEST(KernelStats, Duration) {
  KernelStats k;
  k.launched_at = 10;
  k.completed_at = 110;
  EXPECT_EQ(k.duration(), 100u);
}

TEST(FaultLog, OrdersEntries) {
  FaultLog log(true);
  FaultLogEntry e;
  e.page = 7;
  log.record(e);
  e.page = 9;
  log.record(e);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].order, 0u);
  EXPECT_EQ(log.entries()[1].order, 1u);
  EXPECT_EQ(log.entries()[1].page, 9u);
}

TEST(FaultLog, DisabledDropsEntries) {
  FaultLog log(false);
  log.record(FaultLogEntry{});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.enabled());
}

}  // namespace
}  // namespace uvmsim
