#include "uvm/service.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(ServiceHelpers, RunsToBytes) {
  std::vector<PageMask::Run> runs = {{0, 1}, {10, 16}, {100, 512}};
  auto bytes = runs_to_bytes(runs);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], kPageSize);
  EXPECT_EQ(bytes[1], 16 * kPageSize);
  EXPECT_EQ(bytes[2], 512 * kPageSize);
}

TEST(ServiceHelpers, RunsToBytesEmpty) {
  EXPECT_TRUE(runs_to_bytes(std::vector<PageMask::Run>{}).empty());
  EXPECT_TRUE(runs_to_bytes(PageMask{}).empty());
}

TEST(ServiceHelpers, SliceMaskFullBlockGranularity) {
  PageMask m = slice_mask(0, kPagesPerBlock, kPagesPerBlock);
  EXPECT_EQ(m.count(), kPagesPerBlock);
}

TEST(ServiceHelpers, SliceMaskSubBlock) {
  // 128-page slices: slice 2 covers [256, 384).
  PageMask m = slice_mask(2, 128, kPagesPerBlock);
  EXPECT_EQ(m.count(), 128u);
  EXPECT_FALSE(m.test(255));
  EXPECT_TRUE(m.test(256));
  EXPECT_TRUE(m.test(383));
  EXPECT_FALSE(m.test(384));
}

TEST(ServiceHelpers, SliceMaskClampsToValidPages) {
  // Partial block with 300 valid pages: slice 2 of 128 -> [256, 300).
  PageMask m = slice_mask(2, 128, 300);
  EXPECT_EQ(m.count(), 44u);
  // Slice 3 would start past the end: empty.
  EXPECT_TRUE(slice_mask(3, 128, 300).none());
}

TEST(ServiceHelpers, TouchedSlices) {
  PageMask m;
  m.set(0);
  m.set(127);   // slice 0
  m.set(128);   // slice 1
  m.set(400);   // slice 3
  auto slices = touched_slices(m, 128);
  EXPECT_EQ(slices, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(ServiceHelpers, TouchedSlicesWholeBlockGranularity) {
  PageMask m;
  m.set(5);
  m.set(500);
  auto slices = touched_slices(m, kPagesPerBlock);
  EXPECT_EQ(slices, (std::vector<std::uint32_t>{0}));
}

TEST(ServiceHelpers, TouchedSlicesEmpty) {
  EXPECT_TRUE(touched_slices(PageMask{}, 128).empty());
}

}  // namespace
}  // namespace uvmsim
