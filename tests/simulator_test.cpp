// End-to-end Simulator tests: full UVM stack driven by real kernels.
#include "core/simulator.h"

#include <gtest/gtest.h>

#include "workloads/random_access.h"
#include "workloads/regular.h"

namespace uvmsim {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.set_gpu_memory(32ull << 20);
  return cfg;
}

TEST(Simulator, RegularTouchCompletes) {
  Simulator sim(small_cfg());
  RegularTouch wl(8ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_GT(r.total_kernel_time(), 0u);
  EXPECT_EQ(r.total_pages, 2048u);
  // Every page was needed, so every page crossed the link exactly once.
  EXPECT_EQ(r.counters.pages_migrated_h2d, 2048u);
  EXPECT_EQ(r.bytes_h2d, 8ull << 20);
  EXPECT_EQ(r.bytes_d2h, 0u);
  EXPECT_EQ(r.resident_pages_at_end, 2048u);
}

TEST(Simulator, DeterministicForSameSeed) {
  auto run_once = [] {
    Simulator sim(small_cfg());
    RandomTouch wl(4ull << 20);
    wl.setup(sim);
    return sim.run();
  };
  RunResult a = run_once();
  RunResult b = run_once();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.counters.faults_fetched, b.counters.faults_fetched);
  EXPECT_EQ(a.counters.pages_prefetched, b.counters.pages_prefetched);
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
  for (std::size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_EQ(a.fault_log[i].page, b.fault_log[i].page);
    EXPECT_EQ(a.fault_log[i].time, b.fault_log[i].time);
  }
}

TEST(Simulator, DifferentSeedsDifferentInterleave) {
  auto run_once = [](std::uint64_t seed) {
    SimConfig cfg = small_cfg();
    cfg.seed = seed;
    Simulator sim(cfg);
    RandomTouch wl(4ull << 20);
    wl.setup(sim);
    return sim.run();
  };
  RunResult a = run_once(1);
  RunResult b = run_once(2);
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(Simulator, PrefetchOffServicesEveryPageAsFault) {
  SimConfig cfg = small_cfg();
  cfg.driver.prefetch_enabled = false;
  Simulator sim(cfg);
  RegularTouch wl(4ull << 20);  // 1024 pages
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_EQ(r.counters.faults_serviced, 1024u);
  EXPECT_EQ(r.counters.pages_prefetched, 0u);
}

TEST(Simulator, PrefetchReducesFaults) {
  auto faults = [](bool prefetch) {
    SimConfig cfg = small_cfg();
    cfg.driver.prefetch_enabled = prefetch;
    Simulator sim(cfg);
    RegularTouch wl(8ull << 20);
    wl.setup(sim);
    return sim.run().counters.faults_fetched;
  };
  std::uint64_t without = faults(false);
  std::uint64_t with = faults(true);
  EXPECT_LT(with, without / 2);  // paper Table I: >= 64 % reduction
}

TEST(Simulator, ResidencyNeverExceedsCapacity) {
  SimConfig cfg = small_cfg();
  cfg.set_gpu_memory(8ull << 20);  // 4 blocks
  Simulator sim(cfg);
  RegularTouch wl(12ull << 20);  // 150 % oversubscription
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_LE(r.resident_pages_at_end * kPageSize, cfg.gpu_memory());
  EXPECT_GT(r.counters.evictions, 0u);
  // Writes were evicted: data went back to the host.
  EXPECT_GT(r.bytes_d2h, 0u);
}

TEST(Simulator, PmaInUseMatchesBackedBytes) {
  Simulator sim(small_cfg());
  RegularTouch wl(8ull << 20);
  wl.setup(sim);
  sim.run();
  std::uint64_t backed_bytes = 0;
  for (std::size_t b = 0; b < sim.address_space().num_blocks(); ++b) {
    backed_bytes += sim.address_space().block(b).backing.backed_bytes();
  }
  EXPECT_EQ(backed_bytes, sim.pma().bytes_in_use());
}

TEST(Simulator, FaultLogDisabledStaysEmpty) {
  SimConfig cfg = small_cfg();
  cfg.enable_fault_log = false;
  Simulator sim(cfg);
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_TRUE(r.fault_log.empty());
}

TEST(Simulator, MultipleKernelsSequential) {
  Simulator sim(small_cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  RegularTouch wl2(4ull << 20);  // second allocation + kernel
  wl2.setup(sim);
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 2u);
  EXPECT_LE(r.kernels[0].completed_at, r.kernels[1].launched_at);
}

TEST(Simulator, PrefillAllResidentSkipsDriver) {
  Simulator sim(small_cfg());
  RegularTouch wl(4ull << 20);
  wl.setup(sim);
  sim.prefill_all_resident();
  RunResult r = sim.run();
  EXPECT_EQ(r.counters.faults_fetched, 0u);
  EXPECT_EQ(r.bytes_h2d, 0u);
  EXPECT_EQ(r.kernels[0].faults_raised, 0u);
}

TEST(Simulator, WastedPrefetchTracked) {
  // Touch only the first page of each big page; the upgrade prefetches the
  // other 15, which no warp ever touches.
  SimConfig cfg = small_cfg();
  Simulator sim(cfg);
  RangeId rid = sim.malloc_managed(2ull << 20, "sparse");
  VirtPage first = sim.address_space().range(rid).first_page;
  KernelSpec k;
  k.name = "sparse_touch";
  k.blocks.emplace_back();
  AccessStream s;
  for (std::uint32_t bp = 0; bp < 4; ++bp) {
    s.add_run(first + bp * kPagesPerBigPage, 1, false, 500);
  }
  k.blocks.back().warps.push_back(std::move(s));
  sim.launch(std::move(k));
  RunResult r = sim.run();
  EXPECT_GT(r.wasted_prefetch_at_end, 0u);
  EXPECT_GT(r.counters.pages_prefetched, r.wasted_prefetch_at_end / 2);
}

TEST(Simulator, BatchSizeOneStillCompletes) {
  SimConfig cfg = small_cfg();
  cfg.driver.batch_size = 1;
  Simulator sim(cfg);
  RegularTouch wl(1ull << 20);
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_EQ(r.resident_pages_at_end, 256u);
  EXPECT_GT(r.counters.passes, 1u);
}

}  // namespace
}  // namespace uvmsim
