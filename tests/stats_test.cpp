#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uvmsim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h;
  for (std::uint64_t i = 0; i < 100; ++i) h.add(10);  // bucket [8,16)
  EXPECT_EQ(h.count(), 100u);
  double med = h.quantile(0.5);
  EXPECT_GE(med, 8.0);
  EXPECT_LE(med, 16.0);
}

TEST(LogHistogram, ZeroBucket) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(LogHistogram, SpreadQuantilesOrdered) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 10; ++i) h.add(v);
  }
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(LogHistogram, ToStringListsNonEmptyBuckets) {
  LogHistogram h;
  h.add(3);
  h.add(100);
  std::string s = h.to_string();
  EXPECT_NE(s.find("2 4 1"), std::string::npos);
  EXPECT_NE(s.find("64 128 1"), std::string::npos);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, EmptyIsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, AddAfterQuantileStillWorks) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

}  // namespace
}  // namespace uvmsim
