#include "sim/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace uvmsim {
namespace {

/// Deterministic pseudo-random stream for the property tests.
std::uint64_t lcg_next(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 11;
}

/// Reference for LogHistogram::quantile: the midpoint of the bucket holding
/// the rank-floor(q*(n-1)) sample of the sorted inputs ([0,1) reads as 0.5).
double bucket_midpoint_of(std::uint64_t v) {
  if (v == 0) return 0.5;
  int w = std::bit_width(v);
  return (std::ldexp(1.0, w - 1) + std::ldexp(1.0, w)) / 2.0;
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Accumulator, MergePropertyRandomSplits) {
  // Chan merge must match the sequential accumulation for any split point,
  // including empty and singleton halves.
  std::uint64_t s = 0xC0FFEE;
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(static_cast<double>(lcg_next(s) % 10000) / 7.0 - 500.0);
  }
  Accumulator all;
  for (double x : xs) all.add(x);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                            std::size_t{100}, std::size_t{199},
                            std::size_t{200}}) {
    Accumulator left, right;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < split ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
    EXPECT_NEAR(left.sum(), all.sum(), 1e-6);
  }
}

TEST(Accumulator, MergeTwoSingletons) {
  Accumulator a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((2-4)^2 + (6-4)^2) / (2-1)
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h;
  for (std::uint64_t i = 0; i < 100; ++i) h.add(10);  // bucket [8,16)
  EXPECT_EQ(h.count(), 100u);
  double med = h.quantile(0.5);
  EXPECT_GE(med, 8.0);
  EXPECT_LE(med, 16.0);
}

TEST(LogHistogram, ZeroBucket) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(LogHistogram, SpreadQuantilesOrdered) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 10; ++i) h.add(v);
  }
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(LogHistogram, ToStringListsNonEmptyBuckets) {
  LogHistogram h;
  h.add(3);
  h.add(100);
  std::string s = h.to_string();
  EXPECT_NE(s.find("2 4 1"), std::string::npos);
  EXPECT_NE(s.find("64 128 1"), std::string::npos);
}

TEST(LogHistogram, QuantileMatchesBruteForceReference) {
  // Property check against a sorted-sample reference: the quantile must be
  // the midpoint of the bucket holding the rank-floor(q*(n-1)) value.
  std::uint64_t s = 0xBEEF;
  LogHistogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 500; ++i) {
    // Mix magnitudes across many buckets, including zeros.
    std::uint64_t v = lcg_next(s) >> (lcg_next(s) % 50);
    if (i % 17 == 0) v = 0;
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    auto target = static_cast<std::size_t>(
        q * static_cast<double>(vals.size() - 1));
    EXPECT_DOUBLE_EQ(h.quantile(q), bucket_midpoint_of(vals[target]))
        << "q=" << q;
  }
}

TEST(LogHistogram, TopBucketQuantileAndEdges) {
  // The top bucket's upper edge (2^64) does not fit in a uint64; the dump
  // must not shift-overflow and the quantile must stay inside the bucket.
  LogHistogram h;
  h.add(~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), bucket_midpoint_of(~std::uint64_t{0}));
  std::string s = h.to_string();
  EXPECT_NE(s.find("9223372036854775808 18446744073709551615 1"),
            std::string::npos)
      << s;
}

TEST(SampleSet, QuantileMatchesNearestRankReference) {
  // Nearest-rank definition: the smallest sample whose cumulative frequency
  // reaches q — sorted[ceil(q*n)-1] for q > 0, sorted[0] at q = 0.
  std::uint64_t s = 0xFACE;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{10}, std::size_t{101}}) {
    SampleSet ss;
    std::vector<double> vals;
    for (std::size_t i = 0; i < n; ++i) {
      double v = static_cast<double>(lcg_next(s) % 1000);
      vals.push_back(v);
      ss.add(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      std::size_t idx =
          q <= 0.0 ? 0
                   : static_cast<std::size_t>(
                         std::ceil(q * static_cast<double>(n))) -
                         1;
      EXPECT_DOUBLE_EQ(ss.quantile(q), vals[std::min(idx, n - 1)])
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(SampleSet, EvenSizeMedianIsLowerMiddle) {
  // Regression: the old rounding picked the upper middle for even sizes.
  SampleSet ss;
  for (double v : {1.0, 2.0, 3.0, 4.0}) ss.add(v);
  EXPECT_DOUBLE_EQ(ss.quantile(0.5), 2.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, EmptyIsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, AddAfterQuantileStillWorks) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

}  // namespace
}  // namespace uvmsim
