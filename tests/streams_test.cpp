// CUDA-stream semantics: same-stream serialization, cross-stream
// concurrency, and fault-path interference between concurrent kernels.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/workload.h"

namespace uvmsim {
namespace {

SimConfig cfg32() {
  SimConfig cfg;
  cfg.set_gpu_memory(32ull << 20);
  cfg.enable_fault_log = false;
  return cfg;
}

KernelSpec touch_kernel(const VaRange& r, const char* name,
                        std::uint32_t compute_ns = 500) {
  GridBuilder g(name);
  for (std::uint64_t p = 0; p < r.num_pages; p += 32) {
    auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(32, r.num_pages - p));
    g.new_warp().add_run(r.first_page + p, n, true, compute_ns);
  }
  return g.build(static_cast<double>(r.num_pages));
}

TEST(Streams, SameStreamSerializes) {
  Simulator sim(cfg32());
  RangeId a = sim.malloc_managed(4ull << 20, "a");
  RangeId b = sim.malloc_managed(4ull << 20, "b");
  sim.launch(touch_kernel(sim.address_space().range(a), "k0"), 0);
  sim.launch(touch_kernel(sim.address_space().range(b), "k1"), 0);
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 2u);
  EXPECT_LE(r.kernels[0].completed_at, r.kernels[1].launched_at);
}

TEST(Streams, DifferentStreamsOverlap) {
  Simulator sim(cfg32());
  RangeId a = sim.malloc_managed(4ull << 20, "a");
  RangeId b = sim.malloc_managed(4ull << 20, "b");
  sim.launch(touch_kernel(sim.address_space().range(a), "k0"), 0);
  sim.launch(touch_kernel(sim.address_space().range(b), "k1"), 1);
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 2u);
  // Both launched at ~t0; their execution windows overlap.
  EXPECT_LT(r.kernels[1].launched_at, r.kernels[0].completed_at);
  EXPECT_EQ(r.kernels[0].stream, 0u);
  EXPECT_EQ(r.kernels[1].stream, 1u);
  // All pages of both kernels arrived.
  EXPECT_EQ(r.resident_pages_at_end, 2048u);
}

TEST(Streams, ConcurrentKernelsShareTheSmArray) {
  // Solo run vs contended run of the same kernel: contention must slow it
  // down (fewer SM slots + driver serialization across both fault streams).
  auto solo = [] {
    Simulator sim(cfg32());
    RangeId a = sim.malloc_managed(4ull << 20, "a");
    sim.launch(touch_kernel(sim.address_space().range(a), "k0"), 0);
    return sim.run().kernels[0].duration();
  }();
  auto contended = [] {
    Simulator sim(cfg32());
    RangeId a = sim.malloc_managed(4ull << 20, "a");
    RangeId b = sim.malloc_managed(8ull << 20, "b");
    sim.launch(touch_kernel(sim.address_space().range(a), "k0"), 0);
    sim.launch(touch_kernel(sim.address_space().range(b), "rival"), 1);
    RunResult r = sim.run();
    return r.kernels[0].duration();
  }();
  EXPECT_GT(contended, solo);
}

TEST(Streams, ThreeStreamsAllComplete) {
  Simulator sim(cfg32());
  std::vector<RangeId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(sim.malloc_managed(2ull << 20, "r" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    sim.launch(touch_kernel(sim.address_space().range(ids[static_cast<std::size_t>(i)]),
                            "k", 400),
               static_cast<std::uint32_t>(i));
  }
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 3u);
  EXPECT_EQ(r.resident_pages_at_end, 3u * 512u);
}

TEST(Streams, MixedSerialAndConcurrent) {
  Simulator sim(cfg32());
  RangeId a = sim.malloc_managed(2ull << 20, "a");
  RangeId b = sim.malloc_managed(2ull << 20, "b");
  const VaRange& ra = sim.address_space().range(a);
  const VaRange& rb = sim.address_space().range(b);
  sim.launch(touch_kernel(ra, "s0_first"), 0);
  sim.launch(touch_kernel(ra, "s0_second"), 0);  // serial after s0_first
  sim.launch(touch_kernel(rb, "s1_only"), 1);    // concurrent with both
  RunResult r = sim.run();
  ASSERT_EQ(r.kernels.size(), 3u);
  // Stats are in activation order; find the two stream-0 kernels by name.
  const KernelStats* first = nullptr;
  const KernelStats* second = nullptr;
  for (const auto& k : r.kernels) {
    if (k.name == "s0_first") first = &k;
    if (k.name == "s0_second") second = &k;
  }
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_LE(first->completed_at, second->launched_at);
}

TEST(Streams, DeterministicUnderConcurrency) {
  auto run_once = [] {
    Simulator sim(cfg32());
    RangeId a = sim.malloc_managed(4ull << 20, "a");
    RangeId b = sim.malloc_managed(4ull << 20, "b");
    sim.launch(touch_kernel(sim.address_space().range(a), "k0"), 0);
    sim.launch(touch_kernel(sim.address_space().range(b), "k1"), 1);
    return sim.run();
  };
  RunResult x = run_once();
  RunResult y = run_once();
  EXPECT_EQ(x.end_time, y.end_time);
  EXPECT_EQ(x.counters.faults_fetched, y.counters.faults_fetched);
}

TEST(Streams, CrossTenantEvictionInterference) {
  // Two tenants whose combined footprint oversubscribes the GPU: tenant A
  // fits alone, but running beside tenant B it suffers evictions.
  SimConfig cfg = cfg32();
  cfg.set_gpu_memory(8ull << 20);

  auto solo_evictions = [&] {
    Simulator sim(cfg);
    RangeId a = sim.malloc_managed(5ull << 20, "a");
    sim.launch(touch_kernel(sim.address_space().range(a), "tenant_a"), 0);
    return sim.run().counters.evictions;
  }();

  auto contended_evictions = [&] {
    Simulator sim(cfg);
    RangeId a = sim.malloc_managed(5ull << 20, "a");
    RangeId b = sim.malloc_managed(5ull << 20, "b");
    sim.launch(touch_kernel(sim.address_space().range(a), "tenant_a"), 0);
    sim.launch(touch_kernel(sim.address_space().range(b), "tenant_b"), 1);
    return sim.run().counters.evictions;
  }();

  EXPECT_EQ(solo_evictions, 0u);
  EXPECT_GT(contended_evictions, 0u);
}

}  // namespace
}  // namespace uvmsim
