#include "sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace uvmsim::bench {
namespace {

// Scoped UVMSIM_THREADS override; sweep_threads() reads the environment on
// every call, so tests can flip it per case.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("UVMSIM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("UVMSIM_THREADS");
    } else {
      ::setenv("UVMSIM_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      ::setenv("UVMSIM_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("UVMSIM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(SweepThreads, UnsetMeansSerial) {
  ScopedThreadsEnv env(nullptr);
  EXPECT_EQ(sweep_threads(), 1u);
}

TEST(SweepThreads, ExplicitCountHonored) {
  ScopedThreadsEnv env("4");
  EXPECT_EQ(sweep_threads(), 4u);
}

TEST(SweepThreads, ZeroMeansHardwareConcurrency) {
  ScopedThreadsEnv env("0");
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(sweep_threads(), hw == 0 ? 1u : hw);
}

TEST(SweepThreads, GarbageFallsBackToSerial) {
  ScopedThreadsEnv env("lots");
  EXPECT_EQ(sweep_threads(), 1u);
  ScopedThreadsEnv empty("");
  EXPECT_EQ(sweep_threads(), 1u);
}

TEST(SweepRunner, SerialMapRunsInline) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  const auto main_id = std::this_thread::get_id();
  auto ids = runner.map(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    return i * i;
  });
  ASSERT_EQ(ids.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ids[i], i * i);
}

TEST(SweepRunner, ParallelResultsComeBackInSweepOrder) {
  SweepRunner runner(4);
  std::vector<int> points(64);
  std::iota(points.begin(), points.end(), 0);
  // Uneven per-point work so completion order differs from submit order.
  auto results = runner.sweep(points, [](const int& p) {
    std::uint64_t sink = 0;
    for (int i = 0; i < (p % 7) * 1000; ++i) {
      sink += static_cast<std::uint64_t>(i);
    }
    return p * 3 + static_cast<int>(sink & 0);
  });
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(results[i], points[i] * 3);
  }
}

TEST(SweepRunner, ParallelAndSerialAgree) {
  std::vector<double> points = {0.5, 0.75, 1.0, 1.25, 1.5};
  auto job = [](const double& p) { return p * p + 1.0; };
  SweepRunner serial(1);
  SweepRunner parallel(3);
  EXPECT_EQ(serial.sweep(points, job), parallel.sweep(points, job));
}

TEST(SweepRunner, EmptySweepIsEmpty) {
  SweepRunner runner(2);
  auto r = runner.sweep(std::vector<int>{}, [](const int& p) { return p; });
  EXPECT_TRUE(r.empty());
}

TEST(SweepRunner, JobExceptionPropagates) {
  SweepRunner runner(2);
  EXPECT_THROW(runner.map(4,
                          [](std::size_t i) -> int {
                            if (i == 2) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunner, FailingPointDoesNotStopTheSweep) {
  SweepRunner runner(3);
  std::atomic<int> calls{0};
  try {
    (void)runner.map(8, [&calls](std::size_t i) -> int {
      calls.fetch_add(1, std::memory_order_relaxed);
      if (i == 1) throw std::runtime_error("boom");
      return static_cast<int>(i);
    });
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(calls.load(), 8);  // every point still ran
    EXPECT_EQ(e.index(), 1u);
    EXPECT_EQ(e.failed(), 1u);
    EXPECT_EQ(e.total(), 8u);
    EXPECT_NE(std::string(e.what()).find("all remaining points completed"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepRunner, SweepErrorNamesThePointParameters) {
  SweepRunner runner(2);
  std::vector<double> points = {0.5, 0.75, 1.25};
  try {
    (void)runner.sweep(points, [](const double& p) -> double {
      if (p == 0.75) throw std::runtime_error("bad oversubscription");
      return p;
    });
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.index(), 1u);
    const std::string what = e.what();
    EXPECT_NE(what.find("[0.75]"), std::string::npos) << what;
    EXPECT_NE(what.find("bad oversubscription"), std::string::npos) << what;
  }
}

TEST(SweepRunner, SweepErrorAggregatesMultipleFailures) {
  SweepRunner runner(4);
  try {
    (void)runner.map(10, [](std::size_t i) -> int {
      if (i % 2 == 1) throw std::runtime_error("odd point");
      return static_cast<int>(i);
    });
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.index(), 1u);  // first failing point
    EXPECT_EQ(e.failed(), 5u);
    EXPECT_NE(std::string(e.what()).find("and 4 more of 10 points failed"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepRunner, AllPointsRunExactlyOnce) {
  SweepRunner runner(4);
  std::atomic<int> calls{0};
  auto r = runner.map(100, [&calls](std::size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(calls.load(), 100);
  ASSERT_EQ(r.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(r[i], i);
}

}  // namespace
}  // namespace uvmsim::bench
