// Thrashing detector unit tests plus driver integration (pin/throttle
// mitigation of the evict-refault cycle).
#include "uvm/thrashing_detector.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

ThrashingDetector::Config det_cfg(ThrashMitigation m = ThrashMitigation::Pin) {
  ThrashingDetector::Config c;
  c.enabled = true;
  c.window = 1000;
  c.threshold = 2;
  c.mitigation = m;
  c.decay = 100000;
  return c;
}

TEST(ThrashingDetector, DisabledAlwaysMigrates) {
  ThrashingDetector d(ThrashingDetector::Config{});
  d.on_eviction(1, 100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.on_fault(1, 100 + i), ThrashingDetector::Advice::Migrate);
  }
  EXPECT_EQ(d.thrash_events(), 0u);
}

TEST(ThrashingDetector, FaultWithoutEvictionIsNotThrash) {
  ThrashingDetector d(det_cfg());
  EXPECT_EQ(d.on_fault(1, 100), ThrashingDetector::Advice::Migrate);
  EXPECT_EQ(d.thrash_events(), 0u);
}

TEST(ThrashingDetector, RefaultInsideWindowCounts) {
  ThrashingDetector d(det_cfg());
  d.on_eviction(1, 1000);
  EXPECT_EQ(d.on_fault(1, 1500), ThrashingDetector::Advice::Migrate);  // 1st
  EXPECT_EQ(d.thrash_events(), 1u);
  d.on_eviction(1, 2000);
  EXPECT_EQ(d.on_fault(1, 2500), ThrashingDetector::Advice::Pin);  // 2nd arms
  EXPECT_EQ(d.blocks_mitigated(), 1u);
}

TEST(ThrashingDetector, RefaultOutsideWindowIgnored) {
  ThrashingDetector d(det_cfg());
  d.on_eviction(1, 1000);
  EXPECT_EQ(d.on_fault(1, 5000), ThrashingDetector::Advice::Migrate);
  EXPECT_EQ(d.thrash_events(), 0u);
}

TEST(ThrashingDetector, BlocksAreIndependent) {
  ThrashingDetector d(det_cfg());
  d.on_eviction(1, 1000);
  d.on_fault(1, 1100);
  d.on_eviction(1, 1200);
  d.on_fault(1, 1300);  // block 1 armed
  EXPECT_EQ(d.on_fault(2, 1400), ThrashingDetector::Advice::Migrate);
  EXPECT_EQ(d.on_fault(1, 1500), ThrashingDetector::Advice::Pin);
}

TEST(ThrashingDetector, ThrottleAdvice) {
  ThrashingDetector d(det_cfg(ThrashMitigation::Throttle));
  d.on_eviction(1, 1000);
  d.on_fault(1, 1100);
  d.on_eviction(1, 1200);
  EXPECT_EQ(d.on_fault(1, 1300), ThrashingDetector::Advice::Throttle);
}

TEST(ThrashingDetector, DetectOnlyNeverMitigates) {
  ThrashingDetector d(det_cfg(ThrashMitigation::None));
  for (int i = 0; i < 5; ++i) {
    d.on_eviction(1, static_cast<SimTime>(1000 + 200 * i));
    EXPECT_EQ(d.on_fault(1, static_cast<SimTime>(1100 + 200 * i)),
              ThrashingDetector::Advice::Migrate);
  }
  EXPECT_GE(d.thrash_events(), 2u);
  EXPECT_EQ(d.blocks_mitigated(), 0u);
}

TEST(ThrashingDetector, MitigationDecays) {
  auto cfg = det_cfg();
  cfg.decay = 1000;
  ThrashingDetector d(cfg);
  d.on_eviction(1, 1000);
  d.on_fault(1, 1100);
  d.on_eviction(1, 1200);
  EXPECT_EQ(d.on_fault(1, 1300), ThrashingDetector::Advice::Pin);
  // A long quiet period clears the score; by then the last eviction is also
  // outside the window, so the fault migrates normally.
  EXPECT_EQ(d.on_fault(1, 500000), ThrashingDetector::Advice::Migrate);
}

// --- driver integration: the random oversubscription thrash storm ---

class ThrashingDriverTest : public ::testing::Test {
 protected:
  static RunResult run_random_oversub(ThrashMitigation m, bool enabled) {
    SimConfig cfg;
    cfg.set_gpu_memory(16ull << 20);
    cfg.enable_fault_log = false;
    cfg.driver.prefetch_enabled = false;  // maximize block churn
    cfg.driver.thrashing.enabled = enabled;
    cfg.driver.thrashing.mitigation = m;
    cfg.driver.thrashing.window = 2 * kMillisecond;
    cfg.driver.thrashing.threshold = 2;

    Simulator sim(cfg);
    auto wl = make_workload("random", 28ull << 20);  // 175 % oversub
    wl->setup(sim);
    return sim.run();
  }
};

TEST_F(ThrashingDriverTest, PinMitigationReducesEvictions) {
  RunResult off = run_random_oversub(ThrashMitigation::Pin, false);
  RunResult pin = run_random_oversub(ThrashMitigation::Pin, true);
  EXPECT_GT(pin.counters.thrash_pinned_pages, 0u);
  EXPECT_LT(pin.counters.evictions, off.counters.evictions);
  EXPECT_LT(pin.total_kernel_time(), off.total_kernel_time());
}

TEST_F(ThrashingDriverTest, ThrottleCountsAndCompletes) {
  RunResult r = run_random_oversub(ThrashMitigation::Throttle, true);
  EXPECT_GT(r.counters.thrash_throttles, 0u);
  EXPECT_EQ(r.counters.thrash_pinned_pages, 0u);
}

}  // namespace
}  // namespace uvmsim
