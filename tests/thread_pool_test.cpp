#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace uvmsim {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futs;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500u);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  pool.parallel_for(10, [&](std::size_t i) {
    std::lock_guard lock(mu);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

TEST(ThreadPool, LaneRangePartitionIsDisjointAndComplete) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t lanes : {1u, 2u, 3u, 8u, 17u}) {
      std::vector<int> hits(n, 0);
      std::size_t total = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        const LaneRange r = lane_range(n, lanes, l);
        ASSERT_LE(r.begin, r.end);
        for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
        total += r.end - r.begin;
        // Balanced: no lane exceeds ceil(n / lanes).
        ASSERT_LE(r.end - r.begin, (n + lanes - 1) / lanes);
      }
      ASSERT_EQ(total, n) << "n=" << n << " lanes=" << lanes;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "index " << i << " owned by != 1 lane";
      }
    }
  }
}

TEST(ThreadPool, ForLanesCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (std::size_t lanes : {1u, 2u, 4u, 9u}) {
    const std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.for_lanes(n, lanes,
                   [&](std::size_t lane, std::size_t b, std::size_t e) {
                     ASSERT_LT(lane, lanes);
                     for (std::size_t i = b; i < e; ++i) ++hits[i];
                   });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ForLanesMoreLanesThanItemsRunsEmptyTail) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.for_lanes(3, 8, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, LaneReduceBitIdenticalForEveryLaneAndPoolSize) {
  // The determinism contract: with a lane-order merge, the reduction result
  // never depends on pool size or lane count — including the pool-less
  // serial fallback.
  const std::size_t n = 1000;
  auto sum_body = [](std::uint64_t& acc, std::size_t i) {
    acc += i * i + 13;
  };
  auto make = [] { return std::uint64_t{0}; };
  auto merge = [](std::uint64_t& a, const std::uint64_t& b) { a += b; };
  const std::uint64_t serial =
      lane_reduce<std::uint64_t>(nullptr, n, 1, make, sum_body, merge);
  for (std::size_t pool_size : {1u, 2u, 4u}) {
    ThreadPool pool(pool_size);
    for (std::size_t lanes : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(serial, lane_reduce<std::uint64_t>(&pool, n, lanes, make,
                                                   sum_body, merge))
          << "pool=" << pool_size << " lanes=" << lanes;
    }
  }
}

}  // namespace
}  // namespace uvmsim
