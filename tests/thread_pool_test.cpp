#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace uvmsim {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futs;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500u);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  pool.parallel_for(10, [&](std::size_t i) {
    std::lock_guard lock(mu);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

}  // namespace
}  // namespace uvmsim
