#include "core/timeline.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

FaultLogEntry entry(SimTime t, FaultLogKind k) {
  FaultLogEntry e;
  e.time = t;
  e.kind = k;
  return e;
}

TEST(Timeline, BucketsEventsByTime) {
  std::vector<FaultLogEntry> log = {
      entry(0, FaultLogKind::Fault),
      entry(999, FaultLogKind::Fault),
      entry(1000, FaultLogKind::Fault),
      entry(2500, FaultLogKind::Eviction),
  };
  Timeline tl(log, 1000);
  ASSERT_EQ(tl.num_buckets(), 3u);
  EXPECT_EQ(tl.count(FaultLogKind::Fault, 0), 2u);
  EXPECT_EQ(tl.count(FaultLogKind::Fault, 1), 1u);
  EXPECT_EQ(tl.count(FaultLogKind::Fault, 2), 0u);
  EXPECT_EQ(tl.count(FaultLogKind::Eviction, 2), 1u);
}

TEST(Timeline, EmptyLogSingleEmptyBucket) {
  Timeline tl({}, 1000);
  EXPECT_EQ(tl.num_buckets(), 1u);
  EXPECT_EQ(tl.count(FaultLogKind::Fault, 0), 0u);
}

TEST(Timeline, ZeroBucketThrows) {
  EXPECT_THROW(Timeline({}, 0), std::invalid_argument);
}

TEST(Timeline, SeriesAndPeak) {
  std::vector<FaultLogEntry> log;
  for (int i = 0; i < 5; ++i) log.push_back(entry(3500, FaultLogKind::Fault));
  log.push_back(entry(500, FaultLogKind::Fault));
  Timeline tl(log, 1000);
  auto s = tl.series(FaultLogKind::Fault);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[3], 5u);
  EXPECT_EQ(tl.peak_bucket(FaultLogKind::Fault), 3u);
}

TEST(Timeline, SparklineShape) {
  std::vector<FaultLogEntry> log;
  for (int i = 0; i < 10; ++i) log.push_back(entry(0, FaultLogKind::Fault));
  log.push_back(entry(9999, FaultLogKind::Fault));
  Timeline tl(log, 100);
  std::string s = tl.sparkline(FaultLogKind::Fault, 10);
  ASSERT_EQ(s.size(), 10u);
  EXPECT_EQ(s[0], '#');   // peak column
  EXPECT_NE(s[9], ' ');   // single event still visible
  EXPECT_NE(s[9], '#');   // but not the peak glyph
  EXPECT_EQ(s[5], ' ');   // quiet middle
}

TEST(Timeline, SparklineEmptySeries) {
  Timeline tl({}, 1000);
  std::string s = tl.sparkline(FaultLogKind::Fault, 8);
  EXPECT_EQ(s, std::string(8, ' '));
}

TEST(Timeline, EndToEndEvictionWave) {
  // Oversubscribed run: evictions must appear strictly after the first
  // faults (the GPU fills before it evicts).
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  Simulator sim(cfg);
  auto wl = make_workload("regular", 24ull << 20);
  wl->setup(sim);
  RunResult r = sim.run();

  Timeline tl(r.fault_log, 100 * kMicrosecond);
  auto faults = tl.series(FaultLogKind::Fault);
  auto evicts = tl.series(FaultLogKind::Eviction);
  std::size_t first_fault = 0, first_evict = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i]) {
      first_fault = i;
      break;
    }
  }
  for (std::size_t i = 0; i < evicts.size(); ++i) {
    if (evicts[i]) {
      first_evict = i;
      break;
    }
  }
  EXPECT_GT(first_evict, first_fault);
}

}  // namespace
}  // namespace uvmsim
