// Trace capture / serialization / replay tests.
#include "workloads/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/errors.h"
#include "core/simulator.h"
#include "workloads/registry.h"

namespace uvmsim {
namespace {

SimConfig cfg32() {
  SimConfig cfg;
  cfg.set_gpu_memory(32ull << 20);
  cfg.enable_fault_log = false;
  return cfg;
}

TraceData tiny_trace() {
  TraceData t;
  t.ranges.push_back({"a", 2ull << 20, true});
  t.ranges.push_back({"b", 1ull << 20, false});
  TraceData::Kernel k;
  k.name = "k0";
  k.work_units = 42.0;
  k.warps.emplace_back();
  TraceData::Access acc;
  acc.write = true;
  acc.compute_ns = 500;
  acc.pages = {{0, 0}, {0, 1}, {1, 7}};
  k.warps.back().push_back(acc);
  t.kernels.push_back(std::move(k));
  return t;
}

TEST(TraceIo, WriteParseRoundTrip) {
  TraceData t = tiny_trace();
  std::stringstream ss;
  write_trace(ss, t);
  TraceData back = parse_trace(ss);
  ASSERT_EQ(back.ranges.size(), 2u);
  EXPECT_EQ(back.ranges[0].name, "a");
  EXPECT_EQ(back.ranges[0].bytes, 2ull << 20);
  EXPECT_TRUE(back.ranges[0].host_populated);
  EXPECT_FALSE(back.ranges[1].host_populated);
  ASSERT_EQ(back.kernels.size(), 1u);
  EXPECT_EQ(back.kernels[0].name, "k0");
  EXPECT_DOUBLE_EQ(back.kernels[0].work_units, 42.0);
  ASSERT_EQ(back.kernels[0].warps.size(), 1u);
  ASSERT_EQ(back.kernels[0].warps[0].size(), 1u);
  const auto& acc = back.kernels[0].warps[0][0];
  EXPECT_TRUE(acc.write);
  EXPECT_EQ(acc.compute_ns, 500u);
  EXPECT_EQ(acc.pages.size(), 3u);
  EXPECT_EQ(acc.pages[2], (std::pair<std::uint32_t, std::uint64_t>{1, 7}));
}

TEST(TraceIo, ParseRejectsMalformedInput) {
  // Every rejection is a structured ConfigError (exit code 2 from the CLI,
  // never-retried Config classification in the campaign).
  auto expect_fail = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(parse_trace(ss), ConfigError) << text;
  };
  expect_fail("");                                     // empty
  expect_fail("bogus v1\n");                           // bad header
  expect_fail("uvmsim-trace v2\n");                    // bad version
  expect_fail("uvmsim-trace v1\nwarp\n");              // warp before kernel
  expect_fail("uvmsim-trace v1\nkernel k 0\na 0 0 0:0\n");  // access before warp
  expect_fail("uvmsim-trace v1\nrange a 0 1\n");       // zero-byte range
  expect_fail("uvmsim-trace v1\nrange a\n");           // truncated range line
  expect_fail("uvmsim-trace v1\nrange a 4096 1\nkernel k\n");  // truncated kernel
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0\n");  // truncated access
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0 0 5:0\n");  // bad range idx
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0 0 0:9\n");  // page past end
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0 0 0x0\n");  // no colon
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0 0 q:z\n");  // non-numeric ref
  expect_fail(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\na 0 0\n");  // no pages
  expect_fail("uvmsim-trace v1\nfrobnicate\n");        // unknown directive
  expect_fail(std::string("uvmsim-trace v1\nrange a 4096 1\x00\n", 32));  // NUL
  expect_fail("uvmsim-trace v1\nrange \x01garbage\x02 4096 1\n");  // control bytes
}

TEST(TraceIo, ParseErrorsCarryLineAndByteOffset) {
  // "uvmsim-trace v1\n" is 16 bytes; the bad line starts at offset 16.
  std::stringstream ss("uvmsim-trace v1\nfrobnicate\n");
  try {
    (void)parse_trace(ss);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.param(), "trace line 2");
    EXPECT_NE(std::string(e.what()).find("byte offset 16"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, ParseEnforcesLimits) {
  auto expect_limit = [](const std::string& text, const TraceLimits& limits,
                         const std::string& needle) {
    std::stringstream ss(text);
    try {
      (void)parse_trace(ss, limits);
      FAIL() << "expected ConfigError for: " << needle;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  TraceLimits tiny;
  tiny.max_ranges = 1;
  expect_limit("uvmsim-trace v1\nrange a 4096 1\nrange b 4096 1\n", tiny,
               "more than 1 ranges");
  tiny = TraceLimits{};
  tiny.max_kernels = 1;
  expect_limit("uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nkernel j 0\n",
               tiny, "more than 1 kernels");
  tiny = TraceLimits{};
  tiny.max_warps_per_kernel = 1;
  expect_limit("uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\nwarp\n",
               tiny, "warps in one kernel");
  tiny = TraceLimits{};
  tiny.max_accesses_per_warp = 1;
  expect_limit(
      "uvmsim-trace v1\nrange a 4096 1\nkernel k 0\nwarp\n"
      "a 0 0 0:0\na 0 0 0:0\n",
      tiny, "accesses in one warp");
  tiny = TraceLimits{};
  tiny.max_pages_per_access = 1;
  expect_limit(
      "uvmsim-trace v1\nrange a 65536 1\nkernel k 0\nwarp\na 0 0 0:0 0:1\n",
      tiny, "pages in one access");
  tiny = TraceLimits{};
  tiny.max_total_bytes = 8192;
  expect_limit("uvmsim-trace v1\nrange a 4096 1\nrange b 8192 1\n", tiny,
               "managed bytes");
  tiny = TraceLimits{};
  tiny.max_line_bytes = 8;
  expect_limit("uvmsim-trace v1\n", tiny, "exceeds 8 bytes");
}

TEST(TraceIo, ParseToleratesCrlfLineEndings) {
  std::stringstream ss(
      "uvmsim-trace v1\r\n"
      "range a 4096 1\r\n"
      "kernel k 1\r\n"
      "warp\r\n"
      "a 1 100 0:0\r\n");
  TraceData t = parse_trace(ss);
  EXPECT_EQ(t.ranges.size(), 1u);
  EXPECT_EQ(t.kernels[0].warps[0].size(), 1u);
}

TEST(TraceIo, ParseSkipsCommentsAndBlanks) {
  std::stringstream ss(
      "# a comment\n"
      "uvmsim-trace v1\n"
      "\n"
      "range a 4096 1\n"
      "# another\n"
      "kernel k 1\n"
      "warp\n"
      "a 1 100 0:0\n");
  TraceData t = parse_trace(ss);
  EXPECT_EQ(t.ranges.size(), 1u);
  EXPECT_EQ(t.kernels[0].warps[0].size(), 1u);
}

TEST(TraceIo, CaptureConvertsToRangeRelativePages) {
  auto wl = make_workload("stream", 4ull << 20);
  TraceData t = capture_trace(*wl, cfg32());
  ASSERT_EQ(t.ranges.size(), 3u);
  ASSERT_GE(t.kernels.size(), 1u);
  // Every page ref is in bounds (parse would verify too).
  for (const auto& k : t.kernels) {
    for (const auto& w : k.warps) {
      for (const auto& a : w) {
        for (const auto& [r, p] : a.pages) {
          ASSERT_LT(r, t.ranges.size());
          ASSERT_LT(p, (t.ranges[r].bytes + kPageSize - 1) / kPageSize);
        }
      }
    }
  }
}

TEST(TraceIo, ReplayReproducesOriginalFaultBehaviour) {
  // Capture a workload, replay the trace, and compare driver-observable
  // behaviour under the same config/seed.
  auto original = make_workload("cusparse", 8ull << 20);
  TraceData t = capture_trace(*original, cfg32());

  std::stringstream ss;
  write_trace(ss, t);
  TraceWorkload replay(parse_trace(ss), "cusparse_replay");

  Simulator sim_orig(cfg32());
  make_workload("cusparse", 8ull << 20)->setup(sim_orig);
  RunResult a = sim_orig.run();

  Simulator sim_replay(cfg32());
  replay.setup(sim_replay);
  RunResult b = sim_replay.run();

  EXPECT_EQ(a.counters.faults_fetched, b.counters.faults_fetched);
  EXPECT_EQ(a.counters.pages_migrated_h2d, b.counters.pages_migrated_h2d);
  EXPECT_EQ(a.counters.pages_prefetched, b.counters.pages_prefetched);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(TraceIo, EmptyTraceRejected) {
  EXPECT_THROW(TraceWorkload(TraceData{}), std::invalid_argument);
}

TEST(TraceIo, TotalBytesSumsRanges) {
  TraceData t = tiny_trace();
  EXPECT_EQ(t.total_bytes(), 3ull << 20);
  TraceWorkload wl(t, "tiny");
  EXPECT_EQ(wl.total_bytes(), 3ull << 20);
  EXPECT_EQ(wl.name(), "tiny");
}

TEST(TraceIo, HandWrittenTraceRuns) {
  std::stringstream ss(
      "uvmsim-trace v1\n"
      "range data 65536 1\n"  // 16 pages
      "kernel touch 16\n"
      "warp\n"
      "a 1 200 0:0 0:1 0:2 0:3\n"
      "warp\n"
      "a 0 200 0:8 0:9\n");
  TraceWorkload wl(parse_trace(ss));
  Simulator sim(cfg32());
  wl.setup(sim);
  RunResult r = sim.run();
  EXPECT_EQ(r.counters.faults_serviced, 6u);
  EXPECT_GE(r.resident_pages_at_end, 6u);
}

}  // namespace
}  // namespace uvmsim
