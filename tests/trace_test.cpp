// Tracer unit tests plus end-to-end trace capture: ring behaviour, category
// filtering, the Chrome trace_event exporter (golden determinism modulo the
// wall-clock stamp), and the per-category summary.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>

#include "core/simulator.h"
#include "workloads/random_access.h"

namespace uvmsim {
namespace {

TraceConfig cfg_with(std::size_t cap,
                     std::uint32_t mask = kAllTraceCategories) {
  TraceConfig c;
  c.enabled = true;
  c.capacity = cap;
  c.categories = mask;
  return c;
}

/// The wall-clock stamp is the only nondeterministic field; strip every
/// `,"wall_ns":<digits>` occurrence.
std::string strip_wall_ns(const std::string& s) {
  static const std::string kKey = ",\"wall_ns\":";
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  for (;;) {
    std::size_t hit = s.find(kKey, pos);
    if (hit == std::string::npos) break;
    out.append(s, pos, hit - pos);
    pos = hit + kKey.size();
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }
  out.append(s, pos, std::string::npos);
  return out;
}

TEST(TraceCategoryNames, RoundTrip) {
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(TraceCategory::kCount); ++i) {
    auto name = to_string(static_cast<TraceCategory>(i));
    auto mask = parse_trace_categories(name);
    ASSERT_TRUE(mask.has_value()) << name;
    EXPECT_EQ(*mask, 1u << i);
  }
}

TEST(TraceCategoryParse, ListsAllAndErrors) {
  EXPECT_EQ(parse_trace_categories("all"), kAllTraceCategories);
  EXPECT_EQ(parse_trace_categories(""), kAllTraceCategories);
  auto m = parse_trace_categories("fetch,eviction");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, (1u << static_cast<std::uint32_t>(TraceCategory::Fetch)) |
                    (1u << static_cast<std::uint32_t>(TraceCategory::Eviction)));
  EXPECT_FALSE(parse_trace_categories("fetch,bogus").has_value());
  EXPECT_FALSE(parse_trace_categories("FETCH").has_value());
}

TEST(Tracer, RecordsSpansAndInstants) {
  Tracer tr(cfg_with(16));
  tr.span(TraceCategory::Service, "s", 100, 250, 7, "pages", 3);
  tr.instant(TraceCategory::Replay, "i", 300, 1);
  auto evs = tr.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "s");
  EXPECT_FALSE(evs[0].instant);
  EXPECT_EQ(evs[0].ts, 100u);
  EXPECT_EQ(evs[0].dur, 150u);
  EXPECT_EQ(evs[0].id, 7u);
  EXPECT_STREQ(evs[0].arg_names[0], "pages");
  EXPECT_EQ(evs[0].args[0], 3u);
  EXPECT_TRUE(evs[1].instant);
  EXPECT_EQ(evs[1].dur, 0u);
  EXPECT_EQ(tr.recorded(), 2u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  Tracer tr(cfg_with(4));
  for (SimTime t = 0; t < 10; ++t) {
    tr.span(TraceCategory::Fetch, "f", t, t + 1, t);
  }
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest first: ids 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].id, 6u + i);
}

TEST(Tracer, CategoryFilterRejectsAtRecordTime) {
  Tracer tr(cfg_with(
      16, 1u << static_cast<std::uint32_t>(TraceCategory::Eviction)));
  EXPECT_TRUE(tr.accepts(TraceCategory::Eviction));
  EXPECT_FALSE(tr.accepts(TraceCategory::Fetch));
  tr.span(TraceCategory::Fetch, "f", 0, 1);
  tr.span(TraceCategory::Eviction, "e", 0, 1);
  auto evs = tr.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].name, "e");
}

TEST(Tracer, ZeroCapacityClampedToOne) {
  Tracer tr(cfg_with(0));
  tr.instant(TraceCategory::Fetch, "a", 0);
  tr.instant(TraceCategory::Fetch, "b", 1);
  auto evs = tr.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].name, "b");
}

TEST(ChromeTrace, EmitsWellFormedEvents) {
  Tracer tr(cfg_with(16));
  tr.span(TraceCategory::Service, "svc", 1500, 4750, 9, "pages", 2);
  tr.instant(TraceCategory::Replay, "rep", 5000);
  std::ostringstream os;
  write_chrome_trace(os, tr);
  std::string s = os.str();
  // Structural sanity: our strings never contain braces/brackets, so raw
  // counts must balance (full parse validation lives in scripts/ci.sh).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  // Timestamps are ns rendered as fixed-point us.
  EXPECT_NE(s.find("\"name\":\"svc\",\"cat\":\"service\",\"ph\":\"X\","
                   "\"ts\":1.500,\"dur\":3.250"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("\"name\":\"rep\",\"cat\":\"replay\",\"ph\":\"i\","
                   "\"ts\":5.000,\"s\":\"t\""),
            std::string::npos)
      << s;
  // One thread-name metadata record per category.
  EXPECT_NE(s.find("\"args\":{\"name\":\"eviction\"}"), std::string::npos);
}

TEST(ChromeTrace, HostileNamesAreEscapedGolden) {
  // Event and argument names come from caller-controlled strings (range
  // labels); quotes, backslashes, and control characters must not be able
  // to break the trace file. Golden comparison of the emitted record.
  Tracer tr(cfg_with(16));
  tr.span(TraceCategory::Service, "a\"b\\c\nd\te\x01" "f", 1000, 2000, 0,
          "pg\"s", 7);
  std::ostringstream os;
  write_chrome_trace(os, tr);
  std::string s = strip_wall_ns(os.str());
  EXPECT_NE(s.find("{\"name\":\"a\\\"b\\\\c\\nd\\te\\u0001f\","
                   "\"cat\":\"service\",\"ph\":\"X\",\"ts\":1.000,"
                   "\"dur\":1.000,\"pid\":1,\"tid\":2,"
                   "\"args\":{\"pg\\\"s\":7}}"),
            std::string::npos)
      << s;
  // The raw (unescaped) name must not appear anywhere.
  EXPECT_EQ(s.find("a\"b\\c\nd"), std::string::npos) << s;
  // Escaping must not disturb numeric formatting state for later fields.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
}

TEST(ChromeTrace, EmptyEventListIsValidJson) {
  // Regression: with no recorded events the array must not end in a
  // dangling comma after the thread-name metadata records.
  Tracer tr(cfg_with(16));
  std::ostringstream os;
  write_chrome_trace(os, tr);
  std::string s = os.str();
  EXPECT_EQ(s.find(",\n]"), std::string::npos) << s;
  EXPECT_EQ(s.find(",]"), std::string::npos) << s;
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(TraceSummary, RollsUpPerCategoryAndName) {
  Tracer tr(cfg_with(16));
  tr.span(TraceCategory::Fetch, "f", 0, 1000);
  tr.span(TraceCategory::Fetch, "f", 0, 3000);
  tr.instant(TraceCategory::Replay, "r", 0);
  TraceSummary sum = summarize_trace(tr);
  ASSERT_EQ(sum.rows.size(), 2u);
  EXPECT_EQ(sum.rows[0].category, TraceCategory::Fetch);
  EXPECT_EQ(sum.rows[0].acc.count(), 2u);
  EXPECT_DOUBLE_EQ(sum.rows[0].acc.mean(), 2000.0);
  EXPECT_EQ(sum.rows[1].instants, 1u);
  std::string text = sum.to_string();
  EXPECT_NE(text.find("fetch"), std::string::npos);
  EXPECT_NE(text.find("2.000"), std::string::npos);  // mean in us
}

/// An oversubscribed fixed-seed run: faults, prefetch, replay, and eviction
/// all fire, so every required category appears in the trace.
SimConfig traced_cfg() {
  SimConfig cfg;
  cfg.set_gpu_memory(16ull << 20);
  cfg.enable_fault_log = false;
  cfg.trace.enabled = true;
  return cfg;
}

std::string run_and_export(const SimConfig& cfg) {
  Simulator sim(cfg);
  RandomTouch wl(24ull << 20);
  wl.setup(sim);
  sim.run();
  std::ostringstream os;
  write_chrome_trace(os, *sim.tracer());
  return os.str();
}

TEST(TraceEndToEnd, GoldenTraceIsDeterministicModuloWallClock) {
  std::string a = run_and_export(traced_cfg());
  std::string b = run_and_export(traced_cfg());
  EXPECT_NE(a, b);  // wall_ns differs between runs...
  EXPECT_EQ(strip_wall_ns(a), strip_wall_ns(b));  // ...and nothing else
}

TEST(TraceEndToEnd, AllFiveDriverCategoriesHaveSpans) {
  std::string s = run_and_export(traced_cfg());
  for (const char* cat :
       {"fetch", "service", "prefetch", "replay", "eviction"}) {
    EXPECT_NE(s.find("\"cat\":\"" + std::string(cat) + "\",\"ph\":\"X\""),
              std::string::npos)
        << "missing spans for category " << cat;
  }
}

TEST(TraceEndToEnd, DisabledConfigBuildsNoTracer) {
  SimConfig cfg = traced_cfg();
  cfg.trace.enabled = false;
  Simulator sim(cfg);
  EXPECT_EQ(sim.tracer(), nullptr);
}

TEST(TraceEndToEnd, CategoryMaskLimitsRun) {
  SimConfig cfg = traced_cfg();
  cfg.trace.categories =
      1u << static_cast<std::uint32_t>(TraceCategory::Eviction);
  std::string s = run_and_export(cfg);
  EXPECT_NE(s.find("\"cat\":\"eviction\""), std::string::npos);
  EXPECT_EQ(s.find("\"cat\":\"service\",\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
