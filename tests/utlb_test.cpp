#include "gpu/utlb.h"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Utlb, MissWhenEmpty) {
  Utlb t(4);
  EXPECT_FALSE(t.lookup(0));
}

TEST(Utlb, InsertThenHit) {
  Utlb t(4);
  t.insert(100);
  EXPECT_TRUE(t.lookup(100));
}

TEST(Utlb, BigPageGranularity) {
  Utlb t(4);
  t.insert(0);
  // All pages in the same 16-page big page hit.
  for (VirtPage p = 0; p < kPagesPerBigPage; ++p) EXPECT_TRUE(t.lookup(p));
  EXPECT_FALSE(t.lookup(kPagesPerBigPage));
}

TEST(Utlb, RoundRobinEviction) {
  Utlb t(2);
  t.insert(0 * kPagesPerBigPage);
  t.insert(1 * kPagesPerBigPage);
  t.insert(2 * kPagesPerBigPage);  // evicts the first slot
  EXPECT_FALSE(t.lookup(0));
  EXPECT_TRUE(t.lookup(1 * kPagesPerBigPage));
  EXPECT_TRUE(t.lookup(2 * kPagesPerBigPage));
}

TEST(Utlb, InvalidateAllClears) {
  Utlb t(4);
  t.insert(0);
  t.insert(100);
  t.invalidate_all();
  EXPECT_FALSE(t.lookup(0));
  EXPECT_FALSE(t.lookup(100));
  EXPECT_EQ(t.invalidations(), 1u);
}

TEST(Utlb, ReinsertAfterInvalidate) {
  Utlb t(4);
  t.insert(5);
  t.invalidate_all();
  t.insert(5);
  EXPECT_TRUE(t.lookup(5));
}

}  // namespace
}  // namespace uvmsim
