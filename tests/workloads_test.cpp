// Workload-suite tests: every generator must build, run to completion
// undersubscribed, and show its characteristic pattern properties.
#include "workloads/registry.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/simulator.h"

namespace uvmsim {
namespace {

SimConfig cfg_64mib() {
  SimConfig cfg;
  cfg.set_gpu_memory(64ull << 20);
  cfg.enable_fault_log = false;
  return cfg;
}

RunResult run_workload(const std::string& name, std::uint64_t target,
                       SimConfig cfg = cfg_64mib()) {
  Simulator sim(cfg);
  auto wl = make_workload(name, target);
  wl->setup(sim);
  return sim.run();
}

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, CompletesUndersubscribed) {
  RunResult r = run_workload(GetParam(), 16ull << 20);
  EXPECT_GE(r.kernels.size(), 1u);
  for (const auto& k : r.kernels) {
    EXPECT_GT(k.completed_at, k.launched_at) << k.name;
  }
  EXPECT_EQ(r.counters.evictions, 0u);
  EXPECT_GT(r.counters.faults_serviced, 0u);
}

TEST_P(AllWorkloads, FootprintNearTarget) {
  const std::uint64_t target = 16ull << 20;
  auto wl = make_workload(GetParam(), target);
  double ratio = static_cast<double>(wl->total_bytes()) /
                 static_cast<double>(target);
  EXPECT_GT(ratio, 0.25) << wl->total_bytes();
  EXPECT_LT(ratio, 2.5) << wl->total_bytes();
}

TEST_P(AllWorkloads, PrefetchingCutsFaults) {
  SimConfig with = cfg_64mib();
  SimConfig without = cfg_64mib();
  without.driver.prefetch_enabled = false;
  if (GetParam() == "strided") {
    // Strided is built to starve the density tree (per-block density stays
    // below its threshold) — that is the PR 10 crossover premise. The learned
    // predictor is the policy that must cut its faults.
    with.driver.prefetch_policy = PrefetchPolicyKind::Markov;
  }
  std::uint64_t f_with =
      run_workload(GetParam(), 16ull << 20, with).counters.faults_fetched;
  std::uint64_t f_without =
      run_workload(GetParam(), 16ull << 20, without).counters.faults_fetched;
  // Paper Table I: >= 64 % reduction on every app; we require >= 40 % to
  // absorb scale differences.
  EXPECT_GE(fault_reduction_percent(f_without, f_with), 40.0)
      << "with=" << f_with << " without=" << f_without;
}

TEST_P(AllWorkloads, DeterministicAcrossRuns) {
  RunResult a = run_workload(GetParam(), 8ull << 20);
  RunResult b = run_workload(GetParam(), 8ull << 20);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.counters.faults_fetched, b.counters.faults_fetched);
}

TEST_P(AllWorkloads, NameMatchesRegistry) {
  auto wl = make_workload(GetParam(), 8ull << 20);
  EXPECT_EQ(wl->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& pinfo) { return pinfo.param; });

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nope", 1 << 20), std::invalid_argument);
}

TEST(Registry, ListsNineWorkloads) {
  EXPECT_EQ(workload_names().size(), 9u);
}

TEST(Workloads, RegularTouchesEveryPageOnce) {
  RunResult r = run_workload("regular", 8ull << 20);
  // 2048 pages; all migrated, none zeroed.
  EXPECT_EQ(r.counters.pages_migrated_h2d + r.counters.pages_zeroed,
            r.total_pages);
}

TEST(Workloads, RandomSlowerThanRegular) {
  // Paper §III-C / Fig. 3 (prefetching disabled): random is slower for the
  // same size — scattered faults bin into many VABlocks and fragment the
  // migration into many small DMA runs.
  SimConfig cfg = cfg_64mib();
  cfg.driver.prefetch_enabled = false;
  RunResult reg = run_workload("regular", 16ull << 20, cfg);
  RunResult rnd = run_workload("random", 16ull << 20, cfg);
  EXPECT_GT(rnd.total_kernel_time(), reg.total_kernel_time());
  EXPECT_GT(rnd.profiler.service_total(), reg.profiler.service_total());
}

TEST(Workloads, RandomPrefetchBeatsRegularReduction) {
  // Paper Table I: random reaches 97.9 % reduction vs regular's 82.3 % —
  // scattered faults tip tree subtrees sooner.
  auto reduction = [](const std::string& name) {
    SimConfig without = cfg_64mib();
    without.driver.prefetch_enabled = false;
    std::uint64_t f_without =
        run_workload(name, 16ull << 20, without).counters.faults_fetched;
    std::uint64_t f_with =
        run_workload(name, 16ull << 20).counters.faults_fetched;
    return fault_reduction_percent(f_without, f_with);
  };
  EXPECT_GT(reduction("random"), reduction("regular"));
}

TEST(Workloads, StreamUsesThreeRanges) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("stream", 8ull << 20);
  wl->setup(sim);
  EXPECT_EQ(sim.address_space().num_ranges(), 3u);
  sim.run();
}

TEST(Workloads, SgemmUsesThreeMatrices) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("sgemm", 8ull << 20);
  wl->setup(sim);
  EXPECT_EQ(sim.address_space().num_ranges(), 3u);
}

TEST(Workloads, CufftLaunchesForwardAndInversePasses) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("cufft", 8ull << 20);
  wl->setup(sim);
  RunResult r = sim.run();
  EXPECT_GE(r.kernels.size(), 2u);
  // Later passes hit warm pages: first kernel dominates fault count.
  std::uint64_t first = r.kernels[0].faults_raised;
  std::uint64_t rest = 0;
  for (std::size_t i = 1; i < r.kernels.size(); ++i) {
    rest += r.kernels[i].faults_raised;
  }
  EXPECT_GT(first, rest);
}

TEST(Workloads, HpgmgAllocatesLevelHierarchy) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("hpgmg", 16ull << 20);
  wl->setup(sim);
  ASSERT_GE(sim.address_space().num_ranges(), 3u);
  // Levels shrink.
  EXPECT_GT(sim.address_space().range(0).bytes,
            sim.address_space().range(1).bytes);
  sim.run();
}

TEST(Workloads, TealeafIteratesKernels) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("tealeaf", 8ull << 20);
  wl->setup(sim);
  RunResult r = sim.run();
  EXPECT_GE(r.kernels.size(), 2u);
  EXPECT_EQ(sim.address_space().num_ranges(), 6u);
}

TEST(Workloads, CusparseHasConversionAndSpmm) {
  Simulator sim(cfg_64mib());
  auto wl = make_workload("cusparse", 8ull << 20);
  wl->setup(sim);
  RunResult r = sim.run();
  EXPECT_EQ(r.kernels.size(), 2u);
  EXPECT_EQ(sim.address_space().num_ranges(), 4u);
}

}  // namespace
}  // namespace uvmsim
