#include "analyzer.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "callgraph.h"
#include "dataflow.h"
#include "index.h"
#include "lexer.h"
#include "rules.h"

namespace uvmsim::lint {

namespace {

namespace fs = std::filesystem;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Per-file facts gathered at load time.
// ---------------------------------------------------------------------------

struct FileData {
  LexedFile lx;
  std::string display;  ///< normalized path used in findings
  std::string key;      ///< canonical path used for include resolution
  std::uint64_t hash = 0;  ///< FNV-1a of the raw bytes (index cache key)
  bool is_header = false;
  std::vector<std::pair<std::string, int>> project_includes;  ///< "x/y.h",line
  std::set<std::string> system_includes;                      ///< "vector",...
  bool has_pragma_once = false;
  bool has_include_guard = false;
  /// Names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
};

std::string file_key(const fs::path& p) {
  std::error_code ec;
  fs::path c = fs::weakly_canonical(p, ec);
  if (ec) c = fs::absolute(p, ec).lexically_normal();
  return c.generic_string();
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_id(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}
bool is_p(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

void parse_directives(FileData& fd) {
  bool first = true;
  for (const SideText& d : fd.lx.directives) {
    std::string_view s = d.text;
    if (!s.empty() && s.front() == '#') s.remove_prefix(1);
    s = trim(s);
    if (s.substr(0, 7) == "include") {
      std::string_view rest = trim(s.substr(7));
      if (!rest.empty() && rest.front() == '"') {
        const std::size_t close = rest.find('"', 1);
        if (close != std::string_view::npos) {
          fd.project_includes.emplace_back(
              std::string(rest.substr(1, close - 1)), d.line);
        }
      } else if (!rest.empty() && rest.front() == '<') {
        const std::size_t close = rest.find('>', 1);
        if (close != std::string_view::npos) {
          fd.system_includes.insert(std::string(rest.substr(1, close - 1)));
        }
      }
    } else if (s.substr(0, 6) == "pragma") {
      if (s.find("once") != std::string_view::npos) fd.has_pragma_once = true;
    } else if (first && s.substr(0, 6) == "ifndef") {
      fd.has_include_guard = true;
    }
    first = false;
  }
}

// ---------------------------------------------------------------------------
// Token-walk helpers.
// ---------------------------------------------------------------------------

/// t[open] must be "("; returns the index of the matching ")", or kNpos.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return kNpos;
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "{") ++depth;
    if (t[j].text == "}" && --depth == 0) return j;
  }
  return kNpos;
}

std::size_t match_bracket(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "[") ++depth;
    if (t[j].text == "]" && --depth == 0) return j;
  }
  return kNpos;
}

/// t[open] must be "<". Returns the index just past the matching ">", or
/// kNpos when this is a comparison rather than a template argument list
/// (";", "{", or end of file reached first). ">>" closes two levels.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) {
      continue;
    }
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") return kNpos;
  }
  return kNpos;
}

void collect_unordered_names(FileData& fd) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& t = fd.lx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::Identifier || !kUnordered.count(t[i].text)) {
      continue;
    }
    if (!is_p(t[i + 1], "<")) continue;
    std::size_t j = skip_angles(t, i + 1);
    if (j == kNpos) continue;
    while (j < t.size() &&
           (is_p(t[j], "&") || is_p(t[j], "*") || is_id(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::Identifier) {
      fd.unordered_names.insert(t[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions — the uvmsim-lint: marker plus allow(banned-random, "reason")
// with a mandatory justification, covering that line and the next.
// ---------------------------------------------------------------------------

struct ScopeRange {
  std::string rule;
  int begin = 0;  ///< first covered line, inclusive
  int end = 0;    ///< last covered line, inclusive
};

struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  /// suppress(rule) comments, keyed by the comment's line; resolved to
  /// function extents once the file's symbol index exists.
  std::vector<std::pair<int, std::string>> scoped_pending;
  std::vector<ScopeRange> scoped;
};

bool is_suppressed(const Suppressions& sup, const std::string& rule,
                   int line) {
  const auto it = sup.by_line.find(line);
  if (it != sup.by_line.end() && it->second.count(rule)) return true;
  for (const ScopeRange& r : sup.scoped) {
    if (r.rule == rule && line >= r.begin && line <= r.end) return true;
  }
  return false;
}

/// Maps each pending suppress(rule) comment to the extent of the function
/// whose signature starts on the following line. When no function matches,
/// the suppression degrades to covering the comment line and the next one
/// (same reach as allow), so a stray comment can never widen coverage.
void resolve_scoped(Suppressions& sup, const FileIndex& fi) {
  for (const auto& [cline, rule] : sup.scoped_pending) {
    bool matched = false;
    for (const IndexedSymbol& s : fi.symbols) {
      if (s.is_lambda) continue;
      if (cline + 1 >= s.decl_line && cline + 1 <= s.name_line &&
          s.body_end_line >= s.decl_line) {
        sup.scoped.push_back({rule, s.decl_line, s.body_end_line});
        matched = true;
      }
    }
    if (!matched) sup.scoped.push_back({rule, cline, cline + 1});
  }
  sup.scoped_pending.clear();
}

bool rule_id_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

void parse_scope_suppressions(const FileData& fd, const SideText& c,
                              Suppressions& sup, std::vector<Finding>& meta) {
  std::size_t pos = 0;
  while (true) {
    pos = c.text.find("suppress(", pos);
    if (pos == std::string::npos) break;
    pos += 9;
    while (pos < c.text.size() && c.text[pos] == ' ') ++pos;
    std::string id;
    while (pos < c.text.size() && rule_id_char(c.text[pos])) {
      id += c.text[pos++];
    }
    while (pos < c.text.size() && c.text[pos] == ' ') ++pos;
    if (pos >= c.text.size() || c.text[pos] != ')') continue;
    ++pos;
    if (!is_known_rule(id) || is_meta_rule(id)) {
      meta.push_back({fd.display, c.line, "suppression-unknown-rule", "meta",
                      "suppression names unknown rule '" + id +
                          "'; see uvmsim_lint --list-rules",
                      ""});
      continue;
    }
    // Justification: the rest of the comment text (minus a block-comment
    // terminator), mandatory and non-empty.
    std::string rest = c.text.substr(pos);
    const std::size_t endc = rest.rfind("*/");
    if (endc != std::string::npos) rest = rest.substr(0, endc);
    if (trim(rest).empty()) {
      meta.push_back({fd.display, c.line,
                      "suppression-missing-justification", "meta",
                      "suppression of '" + id +
                          "' lacks the mandatory justification: suppress(" +
                          id + ") why this is safe",
                      ""});
      continue;
    }
    sup.scoped_pending.emplace_back(c.line, id);
  }
}

void parse_suppressions(const FileData& fd, Suppressions& sup,
                        std::vector<Finding>& meta) {
  for (const SideText& c : fd.lx.comments) {
    const std::size_t tag = c.text.find("uvmsim-lint:");
    if (tag == std::string::npos) continue;
    parse_scope_suppressions(fd, c, sup, meta);
    std::size_t pos = tag;
    while (true) {
      pos = c.text.find("allow(", pos);
      if (pos == std::string::npos) break;
      pos += 6;
      while (pos < c.text.size() && c.text[pos] == ' ') ++pos;
      std::string id;
      while (pos < c.text.size() && rule_id_char(c.text[pos])) {
        id += c.text[pos++];
      }
      while (pos < c.text.size() && c.text[pos] == ' ') ++pos;
      if (!is_known_rule(id) || is_meta_rule(id)) {
        meta.push_back({fd.display, c.line, "suppression-unknown-rule", "meta",
                        "suppression names unknown rule '" + id +
                            "'; see uvmsim_lint --list-rules",
                        ""});
        continue;
      }
      std::string justification;
      bool have_justification = false;
      if (pos < c.text.size() && c.text[pos] == ',') {
        ++pos;
        while (pos < c.text.size() && c.text[pos] == ' ') ++pos;
        if (pos < c.text.size() && c.text[pos] == '"') {
          const std::size_t close = c.text.find('"', pos + 1);
          if (close != std::string::npos) {
            justification = c.text.substr(pos + 1, close - pos - 1);
            have_justification = !trim(justification).empty();
            pos = close + 1;
          }
        }
      }
      if (!have_justification) {
        meta.push_back({fd.display, c.line,
                        "suppression-missing-justification", "meta",
                        "suppression of '" + id +
                            "' lacks the mandatory justification string: "
                            "allow(" + id + ", \"why this is safe\")",
                        ""});
        continue;
      }
      sup.by_line[c.line].insert(id);
      sup.by_line[c.line + 1].insert(id);
    }
  }
}

// ---------------------------------------------------------------------------
// missing-include (IWYU-lite) table: std identifier -> providing headers.
// ---------------------------------------------------------------------------

const std::map<std::string_view, std::vector<std::string_view>>&
std_header_table() {
  static const std::map<std::string_view, std::vector<std::string_view>> kT = {
      {"vector", {"vector"}},
      {"string", {"string"}},
      {"to_string", {"string"}},
      {"getline", {"string"}},
      {"stoi", {"string"}},
      {"stoul", {"string"}},
      {"stoull", {"string"}},
      {"stod", {"string"}},
      {"string_view", {"string_view"}},
      {"array", {"array"}},
      {"optional", {"optional"}},
      {"nullopt", {"optional"}},
      {"unique_ptr", {"memory"}},
      {"shared_ptr", {"memory"}},
      {"weak_ptr", {"memory"}},
      {"make_unique", {"memory"}},
      {"make_shared", {"memory"}},
      {"function", {"functional"}},
      {"reference_wrapper", {"functional"}},
      {"ref", {"functional"}},
      {"cref", {"functional"}},
      {"map", {"map"}},
      {"multimap", {"map"}},
      {"set", {"set"}},
      {"multiset", {"set"}},
      {"unordered_map", {"unordered_map"}},
      {"unordered_multimap", {"unordered_map"}},
      {"unordered_set", {"unordered_set"}},
      {"unordered_multiset", {"unordered_set"}},
      {"deque", {"deque"}},
      {"list", {"list"}},
      {"queue", {"queue"}},
      {"priority_queue", {"queue"}},
      {"pair", {"utility"}},
      {"make_pair", {"utility"}},
      {"move", {"utility"}},
      {"swap", {"utility"}},
      {"forward", {"utility"}},
      {"exchange", {"utility"}},
      {"tuple", {"tuple"}},
      {"make_tuple", {"tuple"}},
      {"tie", {"tuple"}},
      {"sort", {"algorithm"}},
      {"stable_sort", {"algorithm"}},
      {"partial_sort", {"algorithm"}},
      {"nth_element", {"algorithm"}},
      {"min", {"algorithm"}},
      {"max", {"algorithm"}},
      {"clamp", {"algorithm"}},
      {"find", {"algorithm"}},
      {"find_if", {"algorithm"}},
      {"fill", {"algorithm"}},
      {"copy", {"algorithm"}},
      {"count", {"algorithm"}},
      {"count_if", {"algorithm"}},
      {"lower_bound", {"algorithm"}},
      {"upper_bound", {"algorithm"}},
      {"max_element", {"algorithm"}},
      {"min_element", {"algorithm"}},
      {"all_of", {"algorithm"}},
      {"any_of", {"algorithm"}},
      {"none_of", {"algorithm"}},
      {"remove_if", {"algorithm"}},
      {"unique", {"algorithm"}},
      {"reverse", {"algorithm"}},
      {"transform", {"algorithm"}},
      {"accumulate", {"numeric"}},
      {"iota", {"numeric"}},
      {"reduce", {"numeric"}},
      {"popcount", {"bit"}},
      {"countr_zero", {"bit"}},
      {"countr_one", {"bit"}},
      {"countl_zero", {"bit"}},
      {"countl_one", {"bit"}},
      {"bit_ceil", {"bit"}},
      {"bit_floor", {"bit"}},
      {"bit_width", {"bit"}},
      {"rotl", {"bit"}},
      {"rotr", {"bit"}},
      {"has_single_bit", {"bit"}},
      {"uint64_t", {"cstdint"}},
      {"uint32_t", {"cstdint"}},
      {"uint16_t", {"cstdint"}},
      {"uint8_t", {"cstdint"}},
      {"int64_t", {"cstdint"}},
      {"int32_t", {"cstdint"}},
      {"int16_t", {"cstdint"}},
      {"int8_t", {"cstdint"}},
      {"uintptr_t", {"cstdint"}},
      {"intptr_t", {"cstdint"}},
      {"size_t", {"cstddef"}},
      {"ptrdiff_t", {"cstddef"}},
      {"nullptr_t", {"cstddef"}},
      {"byte", {"cstddef"}},
      {"thread", {"thread"}},
      {"this_thread", {"thread"}},
      {"jthread", {"thread"}},
      {"mutex", {"mutex"}},
      {"lock_guard", {"mutex"}},
      {"unique_lock", {"mutex"}},
      {"scoped_lock", {"mutex"}},
      {"recursive_mutex", {"mutex"}},
      {"call_once", {"mutex"}},
      {"once_flag", {"mutex"}},
      {"condition_variable", {"condition_variable"}},
      {"condition_variable_any", {"condition_variable"}},
      {"future", {"future"}},
      {"shared_future", {"future"}},
      {"promise", {"future"}},
      {"packaged_task", {"future"}},
      {"async", {"future"}},
      {"atomic", {"atomic"}},
      {"atomic_flag", {"atomic"}},
      {"memory_order", {"atomic"}},
      {"chrono", {"chrono"}},
      {"ostream", {"ostream", "iosfwd", "iostream"}},
      {"istream", {"istream", "iosfwd", "iostream"}},
      {"cout", {"iostream"}},
      {"cerr", {"iostream"}},
      {"cin", {"iostream"}},
      {"clog", {"iostream"}},
      {"endl", {"iostream", "ostream"}},
      {"ofstream", {"fstream"}},
      {"ifstream", {"fstream"}},
      {"fstream", {"fstream"}},
      {"ostringstream", {"sstream"}},
      {"istringstream", {"sstream"}},
      {"stringstream", {"sstream"}},
      {"runtime_error", {"stdexcept"}},
      {"logic_error", {"stdexcept"}},
      {"invalid_argument", {"stdexcept"}},
      {"out_of_range", {"stdexcept"}},
      {"domain_error", {"stdexcept"}},
      {"length_error", {"stdexcept"}},
      {"overflow_error", {"stdexcept"}},
      {"underflow_error", {"stdexcept"}},
      {"exception", {"exception"}},
      {"terminate", {"exception"}},
      {"abort", {"cstdlib"}},
      {"exit", {"cstdlib"}},
      {"getenv", {"cstdlib"}},
      {"strtoull", {"cstdlib"}},
      {"strtoul", {"cstdlib"}},
      {"strtol", {"cstdlib"}},
      {"strtod", {"cstdlib"}},
      {"abs", {"cstdlib", "cmath"}},
      {"memcpy", {"cstring"}},
      {"memset", {"cstring"}},
      {"memmove", {"cstring"}},
      {"strlen", {"cstring"}},
      {"strcmp", {"cstring"}},
      {"strncmp", {"cstring"}},
      {"isdigit", {"cctype"}},
      {"isspace", {"cctype"}},
      {"isalpha", {"cctype"}},
      {"isalnum", {"cctype"}},
      {"tolower", {"cctype"}},
      {"toupper", {"cctype"}},
      {"sqrt", {"cmath"}},
      {"pow", {"cmath"}},
      {"log", {"cmath"}},
      {"log2", {"cmath"}},
      {"log10", {"cmath"}},
      {"exp", {"cmath"}},
      {"floor", {"cmath"}},
      {"ceil", {"cmath"}},
      {"round", {"cmath"}},
      {"lround", {"cmath"}},
      {"fabs", {"cmath"}},
      {"fmod", {"cmath"}},
      {"isnan", {"cmath"}},
      {"isinf", {"cmath"}},
      {"isfinite", {"cmath"}},
      {"hypot", {"cmath"}},
      {"numeric_limits", {"limits"}},
      {"variant", {"variant"}},
      {"visit", {"variant"}},
      {"holds_alternative", {"variant"}},
      {"get_if", {"variant"}},
      {"monostate", {"variant"}},
      {"span", {"span"}},
      {"filesystem", {"filesystem"}},
      {"initializer_list", {"initializer_list"}},
      {"invoke_result_t", {"type_traits"}},
      {"invoke_result", {"type_traits"}},
      {"enable_if_t", {"type_traits"}},
      {"is_same_v", {"type_traits"}},
      {"decay_t", {"type_traits"}},
      {"conditional_t", {"type_traits"}},
      {"remove_cvref_t", {"type_traits"}},
      {"common_type_t", {"type_traits"}},
      {"is_integral_v", {"type_traits"}},
      {"is_floating_point_v", {"type_traits"}},
      {"is_trivially_copyable_v", {"type_traits"}},
      {"setw", {"iomanip"}},
      {"setprecision", {"iomanip"}},
      {"setfill", {"iomanip"}},
      {"snprintf", {"cstdio"}},
      {"printf", {"cstdio"}},
      {"fprintf", {"cstdio"}},
      {"sprintf", {"cstdio"}},
      {"error_code", {"system_error"}},
  };
  return kT;
}

// ---------------------------------------------------------------------------
// The per-file rule pass.
// ---------------------------------------------------------------------------

struct Extent {
  std::size_t begin = 0;  ///< index of the opening "{"
  std::size_t end = 0;    ///< index of the matching "}"
};

bool in_extents(const std::vector<Extent>& es, std::size_t i) {
  for (const Extent& e : es) {
    if (i > e.begin && i < e.end) return true;
  }
  return false;
}

/// Body extents of functions annotated UVMSIM_HOT. The annotation must
/// appear at the start of the definition; the body is the first "{" at
/// paren depth 0 after it (declarations, which reach ";" first, are
/// skipped). Brace member-initializers would end the scan early, so hot
/// functions use parenthesized initializers — all current ones do.
std::vector<Extent> find_hot_extents(const std::vector<Token>& t) {
  std::vector<Extent> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_id(t[i], "UVMSIM_HOT")) continue;
    int pd = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].kind != TokKind::Punct) continue;
      if (t[j].text == "(") ++pd;
      if (t[j].text == ")") --pd;
      if (pd == 0 && t[j].text == ";") break;  // declaration only
      if (pd == 0 && t[j].text == "{") {
        const std::size_t close = match_brace(t, j);
        if (close != kNpos) out.push_back({j, close});
        break;
      }
    }
  }
  return out;
}

/// Body extents of lambdas passed (at any argument position) to
/// ThreadPool::submit/parallel_for or SweepRunner::map/sweep call sites —
/// i.e. code that runs on pool workers.
std::vector<Extent> find_task_extents(const std::vector<Token>& t) {
  static const std::set<std::string_view> kTaskCalls = {
      "submit", "parallel_for", "for_lanes", "map", "sweep"};
  std::vector<Extent> out;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_p(t[i], ".") || is_p(t[i], "->"))) continue;
    if (t[i + 1].kind != TokKind::Identifier ||
        !kTaskCalls.count(t[i + 1].text)) {
      continue;
    }
    if (!is_p(t[i + 2], "(")) continue;
    const std::size_t close = match_paren(t, i + 2);
    if (close == kNpos) continue;
    for (std::size_t j = i + 3; j < close; ++j) {
      if (!is_p(t[j], "[")) continue;
      const std::size_t rb = match_bracket(t, j);
      if (rb == kNpos || rb >= close) break;
      // Walk from the capture list to the lambda body; bail on tokens that
      // show this "[...]" was a subscript, not a lambda introducer.
      int pd = 0;
      std::size_t body = kNpos;
      for (std::size_t k = rb + 1; k < close; ++k) {
        if (t[k].kind == TokKind::Punct) {
          if (t[k].text == "(") ++pd;
          if (t[k].text == ")") --pd;
          if (pd < 0) break;
          if (pd == 0 &&
              (t[k].text == "," || t[k].text == ";" || t[k].text == "]")) {
            break;
          }
          if (pd == 0 && t[k].text == "{") {
            body = k;
            break;
          }
        }
      }
      if (body == kNpos) continue;
      const std::size_t bend = match_brace(t, body);
      if (bend == kNpos || bend > close) continue;
      out.push_back({body, bend});
      j = bend;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// lane-shared-write: servicing-lane bodies (ThreadPool::for_lanes /
// lane_reduce) must only write lane-local state — per-lane accumulators are
// merged serially in lane order by the caller.
// ---------------------------------------------------------------------------

/// One lambda passed to a lane-call site, with enough capture/declaration
/// context to judge (token-level, heuristically) what is lane-local.
struct LaneBody {
  Extent body;
  bool default_ref_capture = false;
  std::set<std::string> ref_captures;  ///< names captured by reference
  std::set<std::string> locals;        ///< parameters + body declarations
};

/// Collects parameter names and declaration-ish identifiers so writes to
/// them are recognized as lane-local. Declarations are matched by shape:
/// an identifier preceded by a type-ish token (identifier / > / * / & / &&)
/// and followed by = { ; : ( — over-matching here only hides findings, it
/// never invents one.
void collect_lane_locals(const std::vector<Token>& t, std::size_t params_open,
                         LaneBody& lb) {
  if (params_open != kNpos && is_p(t[params_open], "(")) {
    const std::size_t close = match_paren(t, params_open);
    if (close != kNpos) {
      int pd = 0;
      std::string last;
      for (std::size_t k = params_open; k <= close; ++k) {
        if (t[k].kind == TokKind::Punct) {
          if (t[k].text == "(") ++pd;
          if (t[k].text == ")") --pd;
          if ((t[k].text == "," && pd == 1) || (t[k].text == ")" && pd == 0)) {
            if (!last.empty()) lb.locals.insert(last);
            last.clear();
          }
        } else if (t[k].kind == TokKind::Identifier) {
          last = t[k].text;
        }
      }
    }
  }
  for (std::size_t k = lb.body.begin + 1; k < lb.body.end; ++k) {
    if (t[k].kind != TokKind::Identifier || k == 0 || k + 1 >= t.size()) {
      continue;
    }
    const Token& prev = t[k - 1];
    const Token& next = t[k + 1];
    const bool typeish_prev =
        prev.kind == TokKind::Identifier ||
        (prev.kind == TokKind::Punct &&
         (prev.text == ">" || prev.text == "*" || prev.text == "&" ||
          prev.text == "&&"));
    const bool declish_next =
        next.kind == TokKind::Punct &&
        (next.text == "=" || next.text == "{" || next.text == ";" ||
         next.text == ":" || next.text == "(");
    if (typeish_prev && declish_next) lb.locals.insert(t[k].text);
  }
}

/// Parses the capture list of the lambda whose introducer "[" is at `lb_open`
/// (matching "]" at `rb`).
void parse_lane_captures(const std::vector<Token>& t, std::size_t lb_open,
                         std::size_t rb, LaneBody& lb) {
  for (std::size_t k = lb_open + 1; k < rb; ++k) {
    if (!is_p(t[k], "&")) continue;
    if (k + 1 < rb && t[k + 1].kind == TokKind::Identifier) {
      lb.ref_captures.insert(t[k + 1].text);
      ++k;
    } else {
      lb.default_ref_capture = true;  // bare [&]
    }
  }
}

/// Lambda bodies passed to ThreadPool::for_lanes(...) (member call) or
/// lane_reduce(...) (free function) call sites — the code that runs as a
/// servicing lane.
std::vector<LaneBody> find_lane_bodies(const std::vector<Token>& t) {
  std::vector<LaneBody> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    std::size_t call = kNpos;
    if (t[i].kind == TokKind::Identifier && t[i].text == "for_lanes" &&
        i >= 1 && (is_p(t[i - 1], ".") || is_p(t[i - 1], "->")) &&
        is_p(t[i + 1], "(")) {
      call = i + 1;
    } else if (t[i].kind == TokKind::Identifier && t[i].text == "lane_reduce" &&
               is_p(t[i + 1], "(")) {
      call = i + 1;
    }
    if (call == kNpos) continue;
    const std::size_t close = match_paren(t, call);
    if (close == kNpos) continue;
    for (std::size_t j = call + 1; j < close; ++j) {
      if (!is_p(t[j], "[")) continue;
      const std::size_t rb = match_bracket(t, j);
      if (rb == kNpos || rb >= close) break;
      // Walk from the capture list to the lambda body; bail on tokens that
      // show this "[...]" was a subscript, not a lambda introducer.
      int pd = 0;
      std::size_t params = kNpos;
      std::size_t body = kNpos;
      for (std::size_t k = rb + 1; k < close; ++k) {
        if (t[k].kind == TokKind::Punct) {
          if (t[k].text == "(") {
            if (pd == 0 && params == kNpos) params = k;
            ++pd;
          }
          if (t[k].text == ")") --pd;
          if (pd < 0) break;
          if (pd == 0 &&
              (t[k].text == "," || t[k].text == ";" || t[k].text == "]")) {
            break;
          }
          if (pd == 0 && t[k].text == "{") {
            body = k;
            break;
          }
        }
      }
      if (body == kNpos) continue;
      const std::size_t bend = match_brace(t, body);
      if (bend == kNpos || bend > close) continue;
      LaneBody lb;
      lb.body = {body, bend};
      parse_lane_captures(t, j, rb, lb);
      collect_lane_locals(t, params, lb);
      out.push_back(std::move(lb));
      j = bend;
    }
  }
  return out;
}

/// Base (leftmost) identifier of the postfix expression ending just before
/// `op` — e.g. for "acc.rows[i].n ++" returns "acc". kNpos-equivalent empty
/// string when the target is not a plain identifier chain.
std::string write_target_base(const std::vector<Token>& t, std::size_t op,
                              std::size_t lo) {
  std::size_t pos = op;
  // Compound |= &= ^= lex as two tokens; step over the operator half.
  if (pos > lo && is_p(t[op], "=") &&
      (is_p(t[pos - 1], "|") || is_p(t[pos - 1], "&") || is_p(t[pos - 1], "^"))) {
    --pos;
  }
  std::string base;
  while (pos > lo) {
    --pos;
    const Token& tok = t[pos];
    if (tok.kind == TokKind::Punct && tok.text == "]") {
      // Reverse-match the subscript.
      int depth = 0;
      while (pos > lo) {
        if (is_p(t[pos], "]")) ++depth;
        if (is_p(t[pos], "[") && --depth == 0) break;
        --pos;
      }
      continue;
    }
    if (tok.kind == TokKind::Identifier) {
      base = tok.text;
      if (pos > lo && (is_p(t[pos - 1], ".") || is_p(t[pos - 1], "->") ||
                       is_p(t[pos - 1], "::"))) {
        --pos;  // keep walking toward the chain's base
        continue;
      }
      return base;
    }
    return "";  // parenthesized / dereferenced target: give up silently
  }
  return "";
}

void check_file(const FileData& fd, const std::set<std::string>& unordered_all,
                std::vector<Finding>& out) {
  const auto& t = fd.lx.tokens;
  const std::string& norm = fd.display;
  const bool rng_impl =
      ends_with(norm, "sim/rng.h") || ends_with(norm, "sim/rng.cpp");
  const bool trace_impl =
      ends_with(norm, "sim/trace.h") || ends_with(norm, "sim/trace.cpp");
  const bool bench_file =
      norm.find("bench/") == 0 || norm.find("/bench/") != std::string::npos;

  auto add = [&](int line, std::string_view rule, std::string message) {
    for (const RuleInfo& r : all_rules()) {
      if (r.id == rule) {
        out.push_back({fd.display, line, std::string(rule),
                       std::string(r.category), std::move(message), ""});
        return;
      }
    }
  };

  const std::vector<Extent> hot = find_hot_extents(t);
  const std::vector<Extent> task = find_task_extents(t);

  static const std::set<std::string_view> kRandomIds = {
      "srand",        "random_device", "mt19937",
      "mt19937_64",   "minstd_rand",   "minstd_rand0",
      "ranlux24",     "ranlux48",      "default_random_engine",
      "knuth_b",      "drand48",       "lrand48",
      "mrand48"};
  static const std::set<std::string_view> kClockAlways = {
      "system_clock", "gettimeofday", "timespec_get", "clock_gettime"};
  static const std::set<std::string_view> kClockRestricted = {
      "steady_clock", "high_resolution_clock"};
  static const std::set<std::string_view> kHotAllocIds = {
      "make_unique", "make_shared", "malloc",       "calloc",
      "realloc",     "strdup",      "aligned_alloc"};
  static const std::set<std::string_view> kHotContainers = {
      "vector",        "string",        "map",
      "set",           "multimap",      "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "deque",    "list",
      "queue",         "priority_queue", "stringstream",
      "ostringstream", "istringstream", "basic_string"};
  static const std::set<std::string_view> kTaskIoIds = {
      "cout", "cerr", "clog", "printf", "fprintf", "puts", "fputs",
      "putchar"};
  static const std::set<std::string_view> kTaskSharedIds = {
      "Tracer", "Profiler", "tracer", "profiler", "tracer_", "profiler_"};
  static const std::set<std::string_view> kOrderedAssoc = {"map", "set",
                                                           "multimap",
                                                           "multiset"};

  // Track required std headers for missing-include (headers only); keyed by
  // the primary providing header so each gap is reported once.
  std::map<std::string, std::pair<int, std::string>> missing;  // hdr->line,id

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::Identifier) continue;
    const bool next_is_call = i + 1 < t.size() && is_p(t[i + 1], "(");

    // ---- D: banned-random --------------------------------------------------
    if (!rng_impl) {
      if (kRandomIds.count(tok.text) || (tok.text == "rand" && next_is_call)) {
        add(tok.line, "banned-random",
            "'" + tok.text +
                "' is nondeterministic; draw from the seeded uvmsim::Rng "
                "(sim/rng.h) instead");
      }
    }

    // ---- D: banned-clock ---------------------------------------------------
    if (kClockAlways.count(tok.text) || (tok.text == "time" && next_is_call)) {
      add(tok.line, "banned-clock",
          "'" + tok.text +
              "' reads the wall clock; simulated time comes from sim/time.h");
    }
    if (kClockRestricted.count(tok.text) && !trace_impl && !bench_file) {
      add(tok.line, "banned-clock",
          "'" + tok.text +
              "' is allowed only in sim/trace.* (wall-clock trace stamps) "
              "and bench/ (wall-clock reporting)");
    }

    // ---- D: thread-id ------------------------------------------------------
    if (tok.text == "get_id") {
      add(tok.line, "thread-id",
          "std::this_thread::get_id() must not influence simulation "
          "results; tasks are placement-agnostic");
    }

    // ---- D: pointer-keyed-container + A: hot-local-container --------------
    if (tok.text == "std" && i + 2 < t.size() && is_p(t[i + 1], "::") &&
        t[i + 2].kind == TokKind::Identifier) {
      const std::string& name = t[i + 2].text;
      if (kOrderedAssoc.count(name) && i + 3 < t.size() &&
          is_p(t[i + 3], "<")) {
        // Inspect the first template argument; a trailing '*' means the
        // ordering key is a raw pointer.
        int depth = 1;
        std::size_t last = kNpos;
        for (std::size_t j = i + 4; j < t.size(); ++j) {
          if (t[j].kind == TokKind::Punct) {
            if (t[j].text == "<") ++depth;
            if (t[j].text == ">" && --depth == 0) break;
            if (t[j].text == ">>") {
              depth -= 2;
              if (depth <= 0) break;
            }
            if (t[j].text == "," && depth == 1) break;
            if (t[j].text == ";" || t[j].text == "{") break;
          }
          last = j;
        }
        if (last != kNpos && is_p(t[last], "*")) {
          add(tok.line, "pointer-keyed-container",
              "std::" + name +
                  " keyed by a raw pointer iterates in address order, which "
                  "varies run to run; key by a stable id instead");
        }
      }
      if (kHotContainers.count(name) && in_extents(hot, i + 2)) {
        add(t[i + 2].line, "hot-local-container",
            "std::" + name +
                " referenced inside a UVMSIM_HOT body; hot paths use "
                "preallocated members (suppress with a justification if "
                "this does not allocate per event)");
      }
      if (fd.is_header) {
        auto it = std_header_table().find(name);
        if (it != std_header_table().end()) {
          bool satisfied = false;
          for (std::string_view h : it->second) {
            if (fd.system_includes.count(std::string(h))) {
              satisfied = true;
              break;
            }
          }
          if (!satisfied) {
            const std::string primary(it->second.front());
            if (!missing.count(primary)) {
              missing[primary] = {t[i + 2].line, "std::" + name};
            }
          }
        }
      }
    }

    // ---- A: hot-alloc ------------------------------------------------------
    if (in_extents(hot, i)) {
      if (tok.text == "new" ||
          (kHotAllocIds.count(tok.text) &&
           (next_is_call || (i + 1 < t.size() && is_p(t[i + 1], "<"))))) {
        add(tok.line, "hot-alloc",
            "'" + tok.text +
                "' inside a UVMSIM_HOT body; the schedule->fire and service "
                "paths must stay heap-allocation-free");
      }
    }

    // ---- C: mutable-static -------------------------------------------------
    if (tok.text == "static") {
      bool is_function = false;
      bool has_constexpr = false;
      bool has_atomic = false;
      bool saw_star = false;
      bool const_after_last_star = false;
      bool has_const = false;
      int line = tok.line;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const Token& d = t[j];
        if (d.kind == TokKind::Punct) {
          if (d.text == "(") {
            is_function = true;
            break;
          }
          if (d.text == ";" || d.text == "=" || d.text == "{") break;
          if (d.text == "*") {
            saw_star = true;
            const_after_last_star = false;
          }
          continue;
        }
        if (d.kind != TokKind::Identifier) continue;
        if (d.text == "constexpr" || d.text == "consteval") {
          has_constexpr = true;
        }
        if (d.text == "const") {
          has_const = true;
          if (saw_star) const_after_last_star = true;
        }
        if (d.text == "atomic" || d.text == "atomic_flag" ||
            d.text == "once_flag" || d.text == "mutex") {
          has_atomic = true;  // internally synchronized types
        }
      }
      const bool immutable =
          has_constexpr || has_atomic ||
          (has_const && (!saw_star || const_after_last_star));
      if (!is_function && !immutable) {
        add(line, "mutable-static",
            "mutable static state is shared across SweepRunner/ThreadPool "
            "tasks; make it const/constexpr/atomic, or suppress with the "
            "documented guard justification");
      }
    }

    // ---- C: task-io / task-shared-state -----------------------------------
    if (in_extents(task, i)) {
      if (kTaskIoIds.count(tok.text)) {
        add(tok.line, "task-io",
            "'" + tok.text +
                "' inside a pool task; jobs must collect results and let the "
                "caller print in sweep order (byte-identical stdout for any "
                "UVMSIM_THREADS)");
      }
      if (kTaskSharedIds.count(tok.text)) {
        add(tok.line, "task-shared-state",
            "'" + tok.text +
                "' touched from a pool task; only per-run instances owned by "
                "the task are safe — document with allow(task-shared-state, "
                "\"...\")");
      }
    }

    // ---- H: using-namespace-header ----------------------------------------
    if (fd.is_header && tok.text == "using" && i + 1 < t.size() &&
        is_id(t[i + 1], "namespace")) {
      add(tok.line, "using-namespace-header",
          "'using namespace' at header scope leaks into every includer");
    }

    // ---- H: assert-side-effect --------------------------------------------
    if (tok.text == "assert" && next_is_call) {
      const std::size_t close = match_paren(t, i + 1);
      if (close != kNpos) {
        for (std::size_t j = i + 2; j < close; ++j) {
          if (t[j].kind == TokKind::Punct &&
              (t[j].text == "++" || t[j].text == "--" || t[j].text == "=")) {
            add(tok.line, "assert-side-effect",
                "assert() argument contains '" + t[j].text +
                    "'; NDEBUG builds would skip the side effect");
            break;
          }
        }
      }
      if (fd.is_header && !fd.system_includes.count("cassert") &&
          !fd.system_includes.count("assert.h") && !missing.count("cassert")) {
        missing["cassert"] = {tok.line, "assert"};
      }
    }

    // ---- D: unordered-iteration -------------------------------------------
    if (tok.text == "for" && next_is_call) {
      const std::size_t close = match_paren(t, i + 1);
      if (close == kNpos) continue;
      int depth = 0;
      std::size_t colon = kNpos;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != TokKind::Punct) continue;
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (depth == 1 && t[j].text == ";") break;  // classic for loop
        if (depth == 1 && t[j].text == ":") {
          colon = j;
          break;
        }
      }
      if (colon == kNpos) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind == TokKind::Identifier && unordered_all.count(t[j].text)) {
          add(t[j].line, "unordered-iteration",
              "range-for over unordered container '" + t[j].text +
                  "'; iteration order depends on hashing and address layout "
                  "— copy to a sorted container or iterate stable keys");
          break;
        }
      }
    }
  }

  // ---- C: lane-shared-write -----------------------------------------------
  // Servicing-lane bodies may only write lane-local state; everything else
  // must flow through per-lane accumulators merged serially in lane order.
  for (const LaneBody& lb : find_lane_bodies(t)) {
    for (std::size_t i = lb.body.begin + 1; i < lb.body.end; ++i) {
      if (t[i].kind != TokKind::Punct) continue;
      static const std::set<std::string_view> kAssignOps = {
          "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>="};
      std::string target;
      if (t[i].text == "++" || t[i].text == "--") {
        if (i + 1 < lb.body.end && t[i + 1].kind == TokKind::Identifier) {
          target = t[i + 1].text;  // prefix
        } else {
          target = write_target_base(t, i, lb.body.begin);  // postfix
        }
      } else if (kAssignOps.count(t[i].text)) {
        target = write_target_base(t, i, lb.body.begin);
      }
      if (target.empty()) continue;
      const bool member_convention =
          target.size() > 1 && target.back() == '_';
      const bool shared =
          member_convention || lb.ref_captures.count(target) > 0 ||
          (lb.default_ref_capture && lb.locals.count(target) == 0);
      if (!shared || lb.locals.count(target) > 0) continue;
      add(t[i].line, "lane-shared-write",
          "'" + target +
              "' written inside a servicing-lane body but is not lane-local "
              "(member / by-reference capture); write a per-lane accumulator "
              "and merge in lane order — allow(lane-shared-write, \"...\") "
              "only on the serial merge step");
    }
  }

  // ---- H: missing-pragma-once ---------------------------------------------
  if (fd.is_header && !fd.has_pragma_once && !fd.has_include_guard) {
    add(1, "missing-pragma-once",
        "header has neither #pragma once nor an include guard");
  }

  // ---- H: missing-include -------------------------------------------------
  for (const auto& [hdr, use] : missing) {
    add(use.first, "missing-include",
        use.second + " used but <" + hdr +
            "> is not directly included; headers must be self-contained "
            "(include-what-you-use)");
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Linter driver.
// ---------------------------------------------------------------------------

struct Linter::Impl {
  LintOptions opts;
  std::vector<FileData> files;
  std::map<std::string, std::size_t> by_key;
  IndexCacheReport cache_report;

  bool add_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();
    FileData fd;
    fd.display = display_path(p);
    fd.key = file_key(p);
    fd.hash = content_hash(source);
    fd.lx = lex_file(fd.display, source);
    const std::string& d = fd.display;
    fd.is_header = ends_with(d, ".h") || ends_with(d, ".hpp");
    parse_directives(fd);
    collect_unordered_names(fd);
    if (by_key.count(fd.key)) return true;  // already added
    by_key[fd.key] = files.size();
    files.push_back(std::move(fd));
    return true;
  }

  /// Path reported in findings: relative to opts.root when the file lives
  /// under it, so baselines and golden output are invocation-directory
  /// independent; the normalized spelling otherwise.
  std::string display_path(const fs::path& p) const {
    const std::string rootk = file_key(fs::path(opts.root));
    const std::string selfk = file_key(p);
    if (selfk.size() > rootk.size() + 1 &&
        selfk.compare(0, rootk.size(), rootk) == 0 &&
        selfk[rootk.size()] == '/') {
      return selfk.substr(rootk.size() + 1);
    }
    return p.lexically_normal().generic_string();
  }
};

Linter::Linter(LintOptions opts) : impl_(new Impl) { impl_->opts = std::move(opts); }
Linter::~Linter() { delete impl_; }

bool Linter::add_path(const std::string& path) {
  const fs::path p(path);
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> found;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (ec) return false;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
        found.push_back(it->path());
      }
    }
    std::sort(found.begin(), found.end(),
              [](const fs::path& a, const fs::path& b) {
                return a.generic_string() < b.generic_string();
              });
    for (const fs::path& f : found) {
      if (!impl_->add_file(f)) return false;
    }
    return true;
  }
  if (fs::is_regular_file(p, ec)) return impl_->add_file(p);
  return false;
}

std::vector<Finding> Linter::run() {
  std::vector<Finding> findings;
  auto& files = impl_->files;

  // Include graph over the scanned set: resolve "a/b.h" against the
  // including file's directory and the project roots.
  const fs::path root(impl_->opts.root);
  const std::vector<fs::path> roots = {root / "src", root / "bench",
                                       root / "tools" / "lint", root / "tools"};
  struct Edge {
    std::size_t to;
    int line;
  };
  std::vector<std::vector<Edge>> edges(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    // Displays can be root-relative while the process cwd is elsewhere, so
    // same-directory includes resolve against root, not cwd.
    const fs::path self = root / files[i].display;
    for (const auto& [inc, line] : files[i].project_includes) {
      std::vector<fs::path> candidates;
      candidates.push_back(self.parent_path() / inc);
      for (const fs::path& r : roots) candidates.push_back(r / inc);
      for (const fs::path& c : candidates) {
        auto it = impl_->by_key.find(file_key(c));
        if (it != impl_->by_key.end()) {
          edges[i].push_back({it->second, line});
          break;
        }
      }
    }
  }

  // H: include-cycle — DFS with colors; every back edge closes a cycle.
  {
    std::vector<int> color(files.size(), 0);  // 0 white, 1 gray, 2 black
    std::vector<std::size_t> stack_nodes;
    struct Frame {
      std::size_t node;
      std::size_t next_edge;
    };
    for (std::size_t start = 0; start < files.size(); ++start) {
      if (color[start] != 0) continue;
      std::vector<Frame> stack{{start, 0}};
      color[start] = 1;
      stack_nodes.push_back(start);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_edge >= edges[f.node].size()) {
          color[f.node] = 2;
          stack_nodes.pop_back();
          stack.pop_back();
          continue;
        }
        const Edge e = edges[f.node][f.next_edge++];
        if (color[e.to] == 1) {
          std::string chain;
          bool in_cycle = false;
          for (std::size_t n : stack_nodes) {
            if (n == e.to) in_cycle = true;
            if (in_cycle) chain += files[n].display + " -> ";
          }
          chain += files[e.to].display;
          findings.push_back({files[f.node].display, e.line, "include-cycle",
                              "hygiene", "project include cycle: " + chain,
                              ""});
          continue;
        }
        if (color[e.to] == 0) {
          color[e.to] = 1;
          stack_nodes.push_back(e.to);
          stack.push_back({e.to, 0});
        }
      }
    }
  }

  // Transitive unordered-container names per file (declarations often live
  // in a header while the iteration lives in the .cpp).
  std::vector<std::set<std::string>> merged(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::set<std::string> acc = files[i].unordered_names;
    std::vector<char> seen(files.size(), 0);
    std::vector<std::size_t> stack{i};
    seen[i] = 1;
    while (!stack.empty()) {
      const std::size_t n = stack.back();
      stack.pop_back();
      acc.insert(files[n].unordered_names.begin(),
                 files[n].unordered_names.end());
      for (const Edge& e : edges[n]) {
        if (!seen[e.to]) {
          seen[e.to] = 1;
          stack.push_back(e.to);
        }
      }
    }
    merged[i] = std::move(acc);
  }

  // Symbol index per TU — scope suppressions and symbol attribution need it
  // in every mode; project mode additionally feeds it to the call graph.
  // Only the project pass consults the on-disk cache: per-file runs are
  // already fast and must not dirty the cache directory.
  impl_->cache_report = {};
  std::vector<FileIndex> indices(files.size());
  {
    IndexCacheStats stats;
    const std::string& cache =
        impl_->opts.project ? impl_->opts.cache_dir : std::string();
    for (std::size_t i = 0; i < files.size(); ++i) {
      indices[i] = index_file_cached(files[i].lx, files[i].hash, cache,
                                     &stats);
      indices[i].path = files[i].display;
    }
    impl_->cache_report = {stats.hits, stats.misses};
  }

  // Suppressions, with scope comments resolved to function extents.
  std::vector<Suppressions> sup(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    parse_suppressions(files[i], sup[i], findings);  // meta findings direct
    resolve_scoped(sup[i], indices[i]);
  }

  // Per-file rule pass. Project mode supersedes two token-level rules with
  // their semantic replacements (the rules stay registered so existing
  // suppressions of them do not become unknown-rule findings).
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<Finding> raw;
    check_file(files[i], merged[i], raw);
    for (Finding& f : raw) {
      if (impl_->opts.project &&
          (f.rule == "unordered-iteration" || f.rule == "lane-shared-write")) {
        continue;
      }
      if (is_suppressed(sup[i], f.rule, f.line)) continue;
      findings.push_back(std::move(f));
    }
  }

  // Whole-program pass: call graph + dataflow rules.
  if (impl_->opts.project) {
    const CallGraph graph(indices);
    for (const ProjectFinding& pf :
         run_project_rules(indices, graph, merged)) {
      if (pf.file < 0 || static_cast<std::size_t>(pf.file) >= files.size()) {
        continue;
      }
      if (is_suppressed(sup[static_cast<std::size_t>(pf.file)], pf.rule,
                        pf.line)) {
        continue;
      }
      std::string category = "determinism";
      for (const RuleInfo& r : all_rules()) {
        if (r.id == pf.rule) {
          category = std::string(r.category);
          break;
        }
      }
      findings.push_back({files[static_cast<std::size_t>(pf.file)].display,
                          pf.line, pf.rule, category, pf.message, pf.symbol});
    }
  }

  // Symbol attribution for per-file findings: the innermost non-lambda
  // symbol whose extent covers the finding line.
  {
    std::map<std::string, std::size_t> by_display;
    for (std::size_t i = 0; i < files.size(); ++i) {
      by_display[files[i].display] = i;
    }
    for (Finding& f : findings) {
      if (!f.symbol.empty()) continue;
      const auto it = by_display.find(f.file);
      if (it == by_display.end()) continue;
      int best_span = -1;
      for (const IndexedSymbol& s : indices[it->second].symbols) {
        if (s.is_lambda) continue;
        if (f.line < s.decl_line || f.line > s.body_end_line) continue;
        const int span = s.body_end_line - s.decl_line;
        if (best_span < 0 || span < best_span) {
          best_span = span;
          f.symbol = s.name;
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

IndexCacheReport Linter::cache_report() const { return impl_->cache_report; }

std::string finding_id(const Finding& f, int ordinal) {
  std::string id = f.rule + ":" + f.file + ":" + f.symbol;
  if (ordinal >= 2) {
    id += '#';
    id += std::to_string(ordinal);
  }
  return id;
}

std::vector<std::string> finding_ids(const std::vector<Finding>& fs) {
  std::map<std::string, int> seen;
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) {
    const std::string base = finding_id(f, 1);
    const int ordinal = ++seen[base];
    out.push_back(finding_id(f, ordinal));
  }
  return out;
}

void write_findings_json(std::ostream& os, const std::vector<Finding>& fs) {
  os << "{\"schema_version\":2,\"count\":" << fs.size() << ",\"findings\":[";
  const std::vector<std::string> ids = finding_ids(fs);
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Finding& f = fs[i];
    if (i > 0) os << ",";
    os << "{\"id\":\"" << json_escape(ids[i]) << "\",\"file\":\""
       << json_escape(f.file) << "\",\"line\":" << f.line << ",\"rule\":\""
       << json_escape(f.rule) << "\",\"category\":\""
       << json_escape(f.category) << "\",\"symbol\":\""
       << json_escape(f.symbol) << "\",\"message\":\""
       << json_escape(f.message) << "\"}";
  }
  os << "]}\n";
}

}  // namespace uvmsim::lint
