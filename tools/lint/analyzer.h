// uvmsim_lint driver: collects files, builds the include graph, runs every
// rule, applies suppressions, and returns findings.
//
// Suppression syntax (enforced, see rules.h meta rules) — the marker
// uvmsim-lint: followed by allow(banned-random, "example justification").
// A suppression covers its own line and the following line, so it can sit
// either at the end of the offending line or on its own line just above.
// The justification string is mandatory; unknown rule ids are findings.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uvmsim::lint {

struct Finding {
  std::string file;  ///< path as passed (normalized separators)
  int line = 0;
  std::string rule;      ///< rule id, e.g. "banned-random"
  std::string category;  ///< rule category, e.g. "determinism"
  std::string message;
};

struct LintOptions {
  /// Repository root; project includes resolve against <root>/src,
  /// <root>/bench, <root>/tools/lint, and the including file's directory.
  std::string root = ".";
};

class Linter {
 public:
  explicit Linter(LintOptions opts = {});
  ~Linter();

  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Adds one file, or every *.h/*.cpp/*.cc under a directory (recursively,
  /// in sorted order). Returns false if the path does not exist or a file
  /// cannot be read.
  bool add_path(const std::string& path);

  /// Runs all rules over the added files. Findings are sorted by
  /// (file, line, rule) and already filtered through suppressions.
  [[nodiscard]] std::vector<Finding> run();

 private:
  struct Impl;
  Impl* impl_;
};

/// Serializes findings as a stable JSON document:
///   {"version":1,"count":N,"findings":[{"file":...,"line":...,...}]}
void write_findings_json(std::ostream& os, const std::vector<Finding>& fs);

}  // namespace uvmsim::lint
