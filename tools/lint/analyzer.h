// uvmsim_lint driver: collects files, builds the include graph, runs every
// rule, applies suppressions, and returns findings.
//
// Suppression syntax (enforced, see rules.h meta rules) — the marker
// uvmsim-lint: followed by either
//   allow(banned-random, "example justification")   — covers its own line
//     and the following line, so it can sit at the end of the offending
//     line or on its own line just above; or
//   suppress(banned-random) example justification   — on the line before a
//     function signature, covers that whole function body.
// The justification is mandatory in both forms; unknown rule ids are
// findings.
//
// With LintOptions::project set, the per-file pass is followed by the
// whole-program pass (index -> call graph -> dataflow rules, see index.h /
// callgraph.h / dataflow.h); the per-file unordered-iteration and
// lane-shared-write rules are superseded by their semantic replacements
// (unordered-sink-iteration, lane-capture-escape) and skipped.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace uvmsim::lint {

struct Finding {
  std::string file;  ///< path as passed, relative to root when under it
  int line = 0;
  std::string rule;      ///< rule id, e.g. "banned-random"
  std::string category;  ///< rule category, e.g. "determinism"
  std::string message;
  /// Nearest enclosing non-lambda function/method, "" at file scope. Part
  /// of the stable finding id, so baselines survive line churn.
  std::string symbol;
};

struct LintOptions {
  /// Repository root; project includes resolve against <root>/src,
  /// <root>/bench, <root>/tools/lint, and the including file's directory.
  /// Finding paths are reported relative to this root when possible.
  std::string root = ".";
  /// Enables the whole-program pass (call-graph reachability + dataflow).
  bool project = false;
  /// On-disk index cache directory for the project pass; "" disables
  /// caching (every TU is re-indexed).
  std::string cache_dir;
};

struct IndexCacheReport {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

class Linter {
 public:
  explicit Linter(LintOptions opts = {});
  ~Linter();

  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Adds one file, or every *.h/*.cpp/*.cc under a directory (recursively,
  /// in sorted order). Returns false if the path does not exist or a file
  /// cannot be read.
  bool add_path(const std::string& path);

  /// Runs all rules over the added files. Findings are sorted by
  /// (file, line, rule), already filtered through suppressions, and carry
  /// their enclosing symbol.
  [[nodiscard]] std::vector<Finding> run();

  /// Index-cache statistics of the last run() (project mode with a cache
  /// directory only; zeros otherwise).
  [[nodiscard]] IndexCacheReport cache_report() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Stable id of one finding: "rule:file:symbol". `ordinal` >= 2 appends
/// "#N" for the Nth finding of the same rule in the same symbol.
[[nodiscard]] std::string finding_id(const Finding& f, int ordinal);

/// Ids for a findings list in order, assigning ordinals to duplicates of
/// the same (rule, file, symbol) triple.
[[nodiscard]] std::vector<std::string> finding_ids(
    const std::vector<Finding>& fs);

/// Minimal JSON string escaping shared by the JSON/SARIF/baseline writers.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Serializes findings as a stable JSON document:
///   {"schema_version":2,"count":N,"findings":[{"id":...,"file":...,...}]}
void write_findings_json(std::ostream& os, const std::vector<Finding>& fs);

}  // namespace uvmsim::lint
