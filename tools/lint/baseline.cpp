#include "baseline.h"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

namespace uvmsim::lint {

namespace {

/// Pulls the next JSON string after `key` starting at *pos; advances *pos.
/// Tolerant scanner — the baseline is machine-written, flat, and only holds
/// "id"/"rule"/"justification" string members, so full JSON parsing is not
/// needed. Handles \" and \\ escapes.
bool next_string_value(const std::string& text, const std::string& key,
                       std::size_t* pos, std::string& out,
                       std::size_t limit) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, *pos);
  if (at == std::string::npos || at >= limit) return false;
  std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return false;
  p = text.find('"', p);
  if (p == std::string::npos) return false;
  out.clear();
  for (++p; p < text.size(); ++p) {
    const char c = text[p];
    if (c == '\\' && p + 1 < text.size()) {
      const char n = text[++p];
      if (n == 'n') {
        out += '\n';
      } else if (n == 't') {
        out += '\t';
      } else {
        out += n;  // \" \\ \/ and anything else: literal
      }
      continue;
    }
    if (c == '"') {
      *pos = p + 1;
      return true;
    }
    out += c;
  }
  return false;
}

}  // namespace

bool read_baseline(const std::string& path,
                   std::vector<BaselineEntry>& entries, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open baseline file '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  if (text.find("\"baseline_version\"") == std::string::npos) {
    error = "'" + path + "' does not look like a uvmsim_lint baseline "
            "(missing baseline_version)";
    return false;
  }
  std::size_t pos = 0;
  while (true) {
    BaselineEntry e;
    const std::size_t before = pos;
    if (!next_string_value(text, "id", &pos, e.id, text.size())) break;
    // The justification belongs to this entry only if it appears before the
    // next id; a missing one is tolerated (empty justification).
    std::size_t next_id_probe = pos;
    std::string dummy;
    std::size_t next_id_at = text.size();
    if (next_string_value(text, "id", &next_id_probe, dummy, text.size())) {
      next_id_at = next_id_probe;
    }
    std::size_t jpos = pos;
    next_string_value(text, "justification", &jpos, e.justification,
                      next_id_at);
    if (jpos > pos && jpos <= next_id_at) pos = jpos;
    if (e.id.empty()) {
      error = "baseline entry with empty id (offset " +
              std::to_string(before) + ")";
      return false;
    }
    entries.push_back(std::move(e));
  }
  return true;
}

void write_baseline(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n  \"baseline_version\": 1,\n  \"findings\": [\n";
  const std::vector<std::string> ids = finding_ids(findings);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    os << "    {\n"
       << "      \"id\": \"" << json_escape(ids[i]) << "\",\n"
       << "      \"rule\": \"" << json_escape(findings[i].rule) << "\",\n"
       << "      \"justification\": \"TODO: justify or fix\"\n"
       << "    }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void apply_baseline(const std::vector<Finding>& findings,
                    const std::vector<BaselineEntry>& entries,
                    std::vector<Finding>& fresh, std::vector<Finding>& known,
                    std::vector<std::string>& stale) {
  std::set<std::string> accepted;
  for (const BaselineEntry& e : entries) accepted.insert(e.id);
  std::set<std::string> used;
  const std::vector<std::string> ids = finding_ids(findings);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (accepted.count(ids[i])) {
      used.insert(ids[i]);
      known.push_back(findings[i]);
    } else {
      fresh.push_back(findings[i]);
    }
  }
  for (const BaselineEntry& e : entries) {
    if (!used.count(e.id)) stale.push_back(e.id);
  }
}

}  // namespace uvmsim::lint
