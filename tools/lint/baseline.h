// Findings baseline: a checked-in JSON list of stable finding ids that are
// accepted (deliberate, justified exceptions). The CI gate fails only on
// findings whose id is NOT in the baseline, so unrelated line churn or
// pre-existing debt never blocks a change, while every new violation does.
//
// Ids are `rule:file:symbol` (see analyzer.h finding_id), with a `#N`
// ordinal suffix when one symbol holds several findings of the same rule.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyzer.h"

namespace uvmsim::lint {

struct BaselineEntry {
  std::string id;
  std::string justification;
};

/// Parses tools/lint/baseline.json. Returns false when the file cannot be
/// read or is malformed; `error` gets a one-line reason.
[[nodiscard]] bool read_baseline(const std::string& path,
                                 std::vector<BaselineEntry>& entries,
                                 std::string& error);

/// Serializes a baseline for the given findings (used by --write-baseline).
/// Each entry's justification starts as "TODO: justify or fix" for a human
/// to edit before committing.
void write_baseline(std::ostream& os, const std::vector<Finding>& findings);

/// Splits `findings` into the ones covered by the baseline and the new
/// ones; `stale` receives baseline ids that matched nothing (candidates for
/// removal). Order within each output follows the input order.
void apply_baseline(const std::vector<Finding>& findings,
                    const std::vector<BaselineEntry>& entries,
                    std::vector<Finding>& fresh, std::vector<Finding>& known,
                    std::vector<std::string>& stale);

}  // namespace uvmsim::lint
