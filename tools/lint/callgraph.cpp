#include "callgraph.h"

#include <deque>
#include <map>
#include <set>

namespace uvmsim::lint {

namespace {

std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// True when `name` equals `spelled` or ends with "::" + spelled — i.e. the
/// call's qualification is a whole-component suffix of the definition.
bool suffix_match(const std::string& name, const std::string& spelled) {
  if (name == spelled) return true;
  if (name.size() <= spelled.size() + 2) return false;
  const std::size_t at = name.size() - spelled.size();
  return name.compare(at, spelled.size(), spelled) == 0 &&
         name.compare(at - 2, 2, "::") == 0;
}

}  // namespace

CallGraph::CallGraph(const std::vector<FileIndex>& files) : files_(files) {
  offset_.reserve(files.size());
  std::size_t total = 0;
  for (const FileIndex& fi : files) {
    offset_.push_back(total);
    total += fi.symbols.size();
  }
  nodes_.reserve(total);
  for (std::size_t f = 0; f < files.size(); ++f) {
    for (std::size_t s = 0; s < files[f].symbols.size(); ++s) {
      nodes_.push_back({static_cast<int>(f), static_cast<int>(s)});
    }
  }

  // Name tables. Lambdas are excluded — they are only reachable through
  // their direct local_target edge.
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_last;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const IndexedSymbol& sym = symbol(static_cast<int>(n));
    if (sym.is_lambda) continue;
    by_name[sym.name].push_back(static_cast<int>(n));
    by_last[last_component(sym.name)].push_back(static_cast<int>(n));
  }

  adj_.assign(nodes_.size(), {});
  radj_.assign(nodes_.size(), {});
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeRef& ref = nodes_[n];
    const IndexedSymbol& sym = files_[ref.file].symbols[ref.sym];
    std::set<int> targets;
    for (const CallSite& c : sym.calls) {
      if (c.local_target >= 0) {
        targets.insert(node_id(ref.file, c.local_target));
        continue;
      }
      auto exact = by_name.find(c.name);
      if (exact != by_name.end()) {
        targets.insert(exact->second.begin(), exact->second.end());
        continue;
      }
      auto loose = by_last.find(last_component(c.name));
      if (loose == by_last.end()) continue;
      for (int cand : loose->second) {
        if (c.name.find("::") == std::string::npos ||
            suffix_match(symbol(cand).name, c.name)) {
          targets.insert(cand);
        }
      }
    }
    targets.erase(static_cast<int>(n));  // direct recursion adds nothing
    for (int to : targets) {
      adj_[n].push_back(to);
      radj_[static_cast<std::size_t>(to)].push_back(static_cast<int>(n));
    }
  }
}

const IndexedSymbol& CallGraph::symbol(int node) const {
  const NodeRef& ref = nodes_[static_cast<std::size_t>(node)];
  return files_[ref.file].symbols[static_cast<std::size_t>(ref.sym)];
}

const std::string& CallGraph::path_of(int node) const {
  return files_[nodes_[static_cast<std::size_t>(node)].file].path;
}

int CallGraph::node_id(int file, int sym) const {
  return static_cast<int>(offset_[static_cast<std::size_t>(file)]) + sym;
}

int CallGraph::named_ancestor(int node) const {
  int cur = node;
  for (int hops = 0; cur >= 0 && hops < 64; ++hops) {
    const NodeRef& ref = nodes_[static_cast<std::size_t>(cur)];
    const IndexedSymbol& sym = files_[ref.file].symbols[ref.sym];
    if (!sym.is_lambda) return cur;
    if (sym.parent < 0) return cur;
    cur = node_id(ref.file, sym.parent);
  }
  return cur;
}

std::vector<int> CallGraph::resolve(const std::string& name, int file,
                                    int local_target) const {
  if (local_target >= 0) return {node_id(file, local_target)};
  std::vector<int> out;
  const std::string base = last_component(name);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const IndexedSymbol& sym = symbol(static_cast<int>(n));
    if (sym.is_lambda) continue;
    if (sym.name == name ||
        (last_component(sym.name) == base &&
         (name.find("::") == std::string::npos ||
          suffix_match(sym.name, name)))) {
      out.push_back(static_cast<int>(n));
    }
  }
  return out;
}

CallGraph::Reach CallGraph::reachable_from(
    const std::vector<int>& roots) const {
  Reach r;
  r.dist.assign(nodes_.size(), -1);
  r.parent.assign(nodes_.size(), -1);
  r.parent_line.assign(nodes_.size(), 0);
  std::deque<int> queue;
  for (int root : roots) {
    if (root < 0 || static_cast<std::size_t>(root) >= nodes_.size()) continue;
    if (r.dist[static_cast<std::size_t>(root)] == 0) continue;
    r.dist[static_cast<std::size_t>(root)] = 0;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int to : adj_[static_cast<std::size_t>(n)]) {
      auto& d = r.dist[static_cast<std::size_t>(to)];
      if (d >= 0) continue;
      d = r.dist[static_cast<std::size_t>(n)] + 1;
      r.parent[static_cast<std::size_t>(to)] = n;
      // Line of the call edge actually used, for chain reporting.
      const IndexedSymbol& from = symbol(n);
      for (const CallSite& c : from.calls) {
        const std::vector<int> t =
            resolve(c.name, nodes_[static_cast<std::size_t>(n)].file,
                    c.local_target);
        bool hit = false;
        for (int cand : t) {
          if (cand == to) {
            hit = true;
            break;
          }
        }
        if (hit) {
          r.parent_line[static_cast<std::size_t>(to)] = c.line;
          break;
        }
      }
      queue.push_back(to);
    }
  }
  return r;
}

std::vector<int> CallGraph::hot_roots() const {
  std::vector<int> out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (symbol(static_cast<int>(n)).is_hot) out.push_back(static_cast<int>(n));
  }
  return out;
}

std::vector<int> CallGraph::ordered_roots() const {
  std::vector<int> out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (symbol(static_cast<int>(n)).is_ordered) {
      out.push_back(static_cast<int>(n));
    }
  }
  return out;
}

std::vector<char> CallGraph::reaches_io() const {
  std::vector<char> tainted(nodes_.size(), 0);
  std::deque<int> queue;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!symbol(static_cast<int>(n)).io_sites.empty()) {
      tainted[n] = 1;
      queue.push_back(static_cast<int>(n));
    }
  }
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int from : radj_[static_cast<std::size_t>(n)]) {
      if (tainted[static_cast<std::size_t>(from)]) continue;
      tainted[static_cast<std::size_t>(from)] = 1;
      queue.push_back(from);
    }
  }
  return tainted;
}

std::string CallGraph::chain_string(const Reach& r, int node) const {
  std::vector<int> path;
  for (int cur = node; cur >= 0; cur = r.parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (path.size() > 64) break;  // cycle guard
  }
  std::string out;
  for (std::size_t i = path.size(); i-- > 0;) {
    const int anc = named_ancestor(path[i]);
    const std::string& name = symbol(anc < 0 ? path[i] : anc).name;
    if (!out.empty() && out.size() >= name.size() &&
        out.compare(out.size() - name.size(), name.size(), name) == 0) {
      continue;  // lambda hop collapsed into its enclosing function
    }
    if (!out.empty()) out += " -> ";
    out += name;
  }
  return out;
}

}  // namespace uvmsim::lint
