// Whole-program call graph over the per-TU indexes.
//
// Nodes are every IndexedSymbol of every file, flattened. Edges come from
// CallSite resolution: an exact qualified-name match wins; otherwise the
// callee's last name component is matched against every symbol's last
// component (qualified call spellings additionally require a whole-component
// suffix match). Lambdas are linked by direct index, so same-named lambdas
// in different files never cross-connect. Resolution over-approximates by
// design — see index.h.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "index.h"

namespace uvmsim::lint {

class CallGraph {
 public:
  /// `files` must outlive the graph.
  explicit CallGraph(const std::vector<FileIndex>& files);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int file_of(int node) const { return nodes_[node].file; }
  [[nodiscard]] const IndexedSymbol& symbol(int node) const;
  /// Display path of the file defining `node`.
  [[nodiscard]] const std::string& path_of(int node) const;
  /// Flat node id for files_[file].symbols[sym].
  [[nodiscard]] int node_id(int file, int sym) const;
  [[nodiscard]] const std::vector<int>& callees(int node) const {
    return adj_[static_cast<std::size_t>(node)];
  }

  /// Nearest enclosing non-lambda symbol (the node itself when it is not a
  /// lambda). -1 only for malformed parent chains.
  [[nodiscard]] int named_ancestor(int node) const;

  /// Nodes for `name` as spelled at a call site in `file`;
  /// `local_target` >= 0 short-circuits to that same-file symbol.
  [[nodiscard]] std::vector<int> resolve(const std::string& name, int file,
                                         int local_target) const;

  struct Reach {
    std::vector<int> dist;         ///< -1 = unreachable
    std::vector<int> parent;       ///< predecessor node on a shortest chain
    std::vector<int> parent_line;  ///< call line in the predecessor's body
  };

  /// BFS from `roots` (dist 0) along call edges.
  [[nodiscard]] Reach reachable_from(const std::vector<int>& roots) const;

  [[nodiscard]] std::vector<int> hot_roots() const;
  [[nodiscard]] std::vector<int> ordered_roots() const;

  /// reaches_io()[n] != 0 when n (or anything it can call) has an I/O site.
  [[nodiscard]] std::vector<char> reaches_io() const;

  /// "root → ... → node" using non-lambda display names.
  [[nodiscard]] std::string chain_string(const Reach& r, int node) const;

 private:
  struct NodeRef {
    int file;
    int sym;
  };
  const std::vector<FileIndex>& files_;
  std::vector<NodeRef> nodes_;
  std::vector<std::size_t> offset_;          ///< per-file base node id
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> radj_;
};

}  // namespace uvmsim::lint
