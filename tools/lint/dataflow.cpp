#include "dataflow.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace uvmsim::lint {

namespace {

struct RulePass {
  const std::vector<FileIndex>& files;
  const CallGraph& graph;
  std::vector<ProjectFinding> out;

  void add(int node, int line, const std::string& rule, std::string message) {
    const int anc = graph.named_ancestor(node);
    out.push_back({graph.file_of(node), line, rule, std::move(message),
                   graph.symbol(anc < 0 ? node : anc).name});
  }

  // -------------------------------------------------------------------------
  // Reachability rules: facts anywhere below a UVMSIM_HOT root.
  // -------------------------------------------------------------------------
  void hot_transitive() {
    const CallGraph::Reach r = graph.reachable_from(graph.hot_roots());
    struct Family {
      const char* rule;
      std::vector<FactSite> IndexedSymbol::*sites;
      const char* noun;
    };
    const Family families[] = {
        {"hot-transitive-alloc", &IndexedSymbol::alloc_sites,
         "heap allocation"},
        {"hot-transitive-io", &IndexedSymbol::io_sites, "I/O"},
        {"hot-transitive-clock", &IndexedSymbol::clock_sites,
         "wall-clock read"},
        {"hot-transitive-random", &IndexedSymbol::rng_sites,
         "nondeterministic RNG"},
    };
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      const int node = static_cast<int>(n);
      // dist >= 1: sites directly inside a hot body are already covered by
      // the per-file hot-alloc / banned-* rules; this pass reports what
      // those rules cannot see. A lambda defined inside the hot body itself
      // counts as the hot body (its chain collapses to the root), so it is
      // also left to the per-file pass.
      if (r.dist[n] < 1) continue;
      const IndexedSymbol& sym = graph.symbol(node);
      if (sym.is_lambda && r.dist[n] == 1 &&
          r.parent[n] == graph.named_ancestor(node)) {
        continue;
      }
      const std::string chain = graph.chain_string(r, node);
      for (const Family& fam : families) {
        std::string last;
        for (const FactSite& site : sym.*(fam.sites)) {
          if (site.what == last) continue;  // one finding per distinct id
          last = site.what;
          add(node, site.line, fam.rule,
              std::string(fam.noun) + " ('" + site.what +
                  "') reachable from a UVMSIM_HOT entry via " + chain);
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // lane-capture-escape: shared state mutated inside a lane lambda.
  // -------------------------------------------------------------------------
  void lane_capture_escape(const std::set<std::string>& lane_owned,
                           const std::set<std::string>& atomics) {
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      const IndexedSymbol& sym = graph.symbol(static_cast<int>(n));
      if (!sym.is_lambda) continue;
      if (sym.lane_role != LaneRole::ForLanes &&
          sym.lane_role != LaneRole::ParallelFor) {
        continue;
      }
      const std::set<std::string> locals(sym.locals.begin(),
                                         sym.locals.end());
      const std::set<std::string> refs(sym.ref_captures.begin(),
                                       sym.ref_captures.end());
      for (const LaneWrite& w : sym.lane_writes) {
        if (locals.count(w.target)) continue;
        const bool member = w.target.size() > 1 && w.target.back() == '_';
        const bool captured =
            member || refs.count(w.target) > 0 || sym.default_ref_capture;
        if (!captured) continue;
        if (w.lane_indexed) continue;            // lane-indexed slot
        if (lane_owned.count(w.target)) continue;  // UVMSIM_LANE_OWNED
        if (atomics.count(w.target)) continue;     // std::atomic
        add(static_cast<int>(n), w.line, "lane-capture-escape",
            "'" + w.target +
                "' is captured shared state mutated inside a " +
                (sym.lane_role == LaneRole::ForLanes ? "for_lanes"
                                                     : "parallel_for") +
                " lane body; index it by a lane-local, make it std::atomic, "
                "or declare it UVMSIM_LANE_OWNED and merge in lane order");
      }
    }
  }

  // -------------------------------------------------------------------------
  // ordered-reads-lane-owned: the serial walk must not consume lane state
  // before the merge point.
  // -------------------------------------------------------------------------
  /// Same heuristic that defines the merge point at call sites (see the
  /// indexer's first_merge_line): a function named *merge*, for_lanes, or
  /// lane_reduce IS the merge machinery — it necessarily reads lane state,
  /// so it is the consumer, not a leak.
  static bool is_merge_symbol(const std::string& name) {
    const std::size_t sep = name.rfind("::");
    std::string last =
        sep == std::string::npos ? name : name.substr(sep + 2);
    for (char& c : last) {
      c = static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
    return last.find("merge") != std::string::npos || last == "for_lanes" ||
           last == "lane_reduce";
  }

  void ordered_purity(const std::set<std::string>& lane_owned) {
    if (lane_owned.empty()) return;
    const CallGraph::Reach r = graph.reachable_from(graph.ordered_roots());
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      if (r.dist[n] < 0) continue;
      const int node = static_cast<int>(n);
      const IndexedSymbol& sym = graph.symbol(node);
      if (is_merge_symbol(sym.name)) continue;
      for (const FactSite& use : sym.member_uses) {
        if (!lane_owned.count(use.what)) continue;
        if (sym.first_merge_line != 0 && use.line >= sym.first_merge_line) {
          continue;  // at/after the merge point: the lanes have joined
        }
        std::string where =
            r.dist[n] == 0 ? "a UVMSIM_ORDERED body"
                           : "code reachable from a UVMSIM_ORDERED entry via " +
                                 graph.chain_string(r, node);
        add(node, use.line, "ordered-reads-lane-owned",
            "UVMSIM_LANE_OWNED state '" + use.what + "' read in " + where +
                " before the merge point; the serial walk may only consume "
                "lane accumulators after they are merged in lane order");
      }
    }
  }

  // -------------------------------------------------------------------------
  // unordered-sink-iteration: unordered iteration that can reach output.
  // -------------------------------------------------------------------------
  void unordered_sink(
      const std::vector<std::set<std::string>>& unordered_names) {
    const std::vector<char> io = graph.reaches_io();
    for (std::size_t f = 0; f < files.size(); ++f) {
      const std::set<std::string>& unordered = unordered_names[f];
      if (unordered.empty()) continue;
      for (const UnorderedLoop& loop : files[f].loops) {
        std::string container;
        for (const std::string& c : loop.containers) {
          if (unordered.count(c)) {
            container = c;
            break;
          }
        }
        if (container.empty()) continue;
        std::string sink;
        if (loop.direct_io) sink = "prints directly";
        for (const CallSite& c : loop.body_calls) {
          if (!sink.empty()) break;
          for (int cand :
               graph.resolve(c.name, static_cast<int>(f), c.local_target)) {
            if (io[static_cast<std::size_t>(cand)]) {
              sink = "calls '" + c.name + "', which can reach I/O";
              break;
            }
          }
        }
        if (sink.empty()) continue;
        const int node = loop.symbol >= 0
                             ? graph.node_id(static_cast<int>(f), loop.symbol)
                             : -1;
        ProjectFinding pf;
        pf.file = static_cast<int>(f);
        pf.line = loop.line;
        pf.rule = "unordered-sink-iteration";
        pf.message =
            "range-for over unordered container '" + container +
            "' whose body " + sink +
            "; hash order would leak into output — iterate a sorted copy "
            "or stable keys";
        if (node >= 0) {
          const int anc = graph.named_ancestor(node);
          pf.symbol = graph.symbol(anc < 0 ? node : anc).name;
        }
        out.push_back(std::move(pf));
      }
    }
  }
};

}  // namespace

std::vector<ProjectFinding> run_project_rules(
    const std::vector<FileIndex>& files, const CallGraph& graph,
    const std::vector<std::set<std::string>>& unordered_names) {
  // Annotation escape hatches are whole-program: a name declared
  // UVMSIM_LANE_OWNED or std::atomic in a header covers uses in every TU.
  std::set<std::string> lane_owned;
  std::set<std::string> atomics;
  for (const FileIndex& fi : files) {
    lane_owned.insert(fi.lane_owned.begin(), fi.lane_owned.end());
    atomics.insert(fi.atomic_names.begin(), fi.atomic_names.end());
  }

  RulePass pass{files, graph, {}};
  pass.hot_transitive();
  pass.lane_capture_escape(lane_owned, atomics);
  pass.ordered_purity(lane_owned);
  pass.unordered_sink(unordered_names);

  std::sort(pass.out.begin(), pass.out.end(),
            [](const ProjectFinding& a, const ProjectFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  pass.out.erase(
      std::unique(pass.out.begin(), pass.out.end(),
                  [](const ProjectFinding& a, const ProjectFinding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      pass.out.end());
  return pass.out;
}

}  // namespace uvmsim::lint
