// Project-mode semantic rules over the whole-program index + call graph:
//
//   hot-transitive-alloc / -io / -clock / -random
//     Everything transitively callable from a UVMSIM_HOT function is checked
//     for allocation, I/O, wall clocks, and RNG; findings carry the call
//     chain from the hot root to the offending site.
//
//   lane-capture-escape
//     A by-reference capture (or captured member state) mutated inside a
//     for_lanes / parallel_for lambda must be lane-indexed, std::atomic, or
//     declared UVMSIM_LANE_OWNED.
//
//   ordered-reads-lane-owned
//     Code reachable from a UVMSIM_ORDERED function (the serial per-bin
//     walk) must not read UVMSIM_LANE_OWNED state before the body's merge
//     point (the first for_lanes / lane_reduce / *merge* call).
//
//   unordered-sink-iteration
//     Range-for over an unordered container is flagged only when the loop
//     body performs I/O or calls something that transitively can — the
//     output-affecting subset of the per-file unordered-iteration rule.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "index.h"

namespace uvmsim::lint {

struct ProjectFinding {
  int file = -1;  ///< index into the FileIndex vector
  int line = 0;
  std::string rule;
  std::string message;
  /// Display name of the nearest non-lambda symbol containing the site;
  /// feeds the stable finding id (rule + file + symbol).
  std::string symbol;
};

/// `unordered_names[i]` holds the unordered-container variable names visible
/// to files[i] (own declarations plus transitive project includes) — the
/// same merged sets the per-file rule uses.
[[nodiscard]] std::vector<ProjectFinding> run_project_rules(
    const std::vector<FileIndex>& files, const CallGraph& graph,
    const std::vector<std::set<std::string>>& unordered_names);

}  // namespace uvmsim::lint
