#include "index.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace uvmsim::lint {

namespace {

namespace fs = std::filesystem;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr int kIndexFormatVersion = 1;

bool is_id(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}
bool is_p(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return kNpos;
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "{") ++depth;
    if (t[j].text == "}" && --depth == 0) return j;
  }
  return kNpos;
}

std::size_t match_bracket(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "[") ++depth;
    if (t[j].text == "]" && --depth == 0) return j;
  }
  return kNpos;
}

/// t[open] must be "<"; returns the index just past the matching ">", or
/// kNpos when the "<" turns out to be a comparison (";" or "{" reached).
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") return kNpos;
  }
  return kNpos;
}

// Identifiers that look like calls but are language constructs.
const std::set<std::string_view>& call_blacklist() {
  static const std::set<std::string_view> k = {
      "if",           "for",        "while",    "switch",   "return",
      "sizeof",       "alignof",    "alignas",  "catch",    "assert",
      "static_assert","decltype",   "noexcept", "new",      "delete",
      "throw",        "defined",    "operator", "case",     "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast",     "typeid",
      "co_return",    "co_await",   "co_yield", "explicit", "requires"};
  return k;
}

const std::set<std::string_view>& alloc_ids() {
  static const std::set<std::string_view> k = {
      "make_unique", "make_shared", "malloc", "calloc",
      "realloc",     "strdup",      "aligned_alloc"};
  return k;
}

const std::set<std::string_view>& io_ids() {
  static const std::set<std::string_view> k = {
      "cout",  "cerr",  "clog",   "printf",   "fprintf", "puts",
      "fputs", "putchar", "fputc", "fopen",   "fwrite",  "ofstream",
      "ifstream", "fstream"};
  return k;
}

const std::set<std::string_view>& clock_ids() {
  static const std::set<std::string_view> k = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "timespec_get", "clock_gettime"};
  return k;
}

const std::set<std::string_view>& rng_ids() {
  static const std::set<std::string_view> k = {
      "srand",      "random_device", "mt19937",       "mt19937_64",
      "minstd_rand","minstd_rand0",  "ranlux24",      "ranlux48",
      "default_random_engine",       "knuth_b",       "drand48",
      "lrand48",    "mrand48"};
  return k;
}

std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

bool contains_ci(const std::string& hay, std::string_view needle) {
  if (needle.empty() || hay.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      char a = hay[i + j];
      if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
      if (a != needle[j]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The token-shape parser.
// ---------------------------------------------------------------------------

struct Parser {
  const std::vector<Token>& t;
  FileIndex out;
  std::set<std::string> lane_owned_set;
  std::set<std::string> atomic_set;

  explicit Parser(const LexedFile& lx) : t(lx.tokens) { out.path = lx.path; }

  void run() {
    collect_declared_names();
    scan_scope(0, t.size(), "");
    out.lane_owned.assign(lane_owned_set.begin(), lane_owned_set.end());
    out.atomic_names.assign(atomic_set.begin(), atomic_set.end());
  }

  /// Pass 1: names declared UVMSIM_LANE_OWNED and names of std::atomic
  /// variables — both are escape hatches for the lane/ordering rules, so
  /// they must be known before bodies are judged.
  void collect_declared_names() {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_id(t[i], "UVMSIM_LANE_OWNED")) {
        // Declared name: the last identifier before the declaration ends
        // (';', '=', '{' or '(' initializer, or '[' of an array extent).
        std::string name;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[j].kind == TokKind::Punct) {
            if (t[j].text == "<") {
              const std::size_t sa = skip_angles(t, j);
              if (sa == kNpos) break;
              j = sa - 1;
              continue;
            }
            if (t[j].text == ";" || t[j].text == "=" || t[j].text == "{" ||
                t[j].text == "[" || t[j].text == "(") {
              break;
            }
            continue;
          }
          if (t[j].kind == TokKind::Identifier) name = t[j].text;
        }
        if (!name.empty()) lane_owned_set.insert(name);
      }
      if (is_id(t[i], "atomic") && i + 1 < t.size() && is_p(t[i + 1], "<")) {
        const std::size_t past = skip_angles(t, i + 1);
        if (past == kNpos || past >= t.size()) continue;
        std::size_t j = past;
        while (j < t.size() &&
               (is_p(t[j], "&") || is_p(t[j], "*") || is_id(t[j], "const"))) {
          ++j;
        }
        if (j < t.size() && t[j].kind == TokKind::Identifier) {
          atomic_set.insert(t[j].text);
        }
      }
    }
  }

  /// Namespace / class / file scope: finds nested scopes and function
  /// definitions; everything else is skipped declaration by declaration.
  void scan_scope(std::size_t lo, std::size_t hi, const std::string& scope) {
    std::size_t decl_start = lo;
    for (std::size_t i = lo; i < hi; ++i) {
      const Token& tok = t[i];
      if (tok.kind == TokKind::Punct) {
        if (tok.text == ";" || tok.text == "}" ) decl_start = i + 1;
        continue;
      }
      if (tok.kind != TokKind::Identifier) continue;

      if (tok.text == "template" && i + 1 < hi && is_p(t[i + 1], "<")) {
        const std::size_t past = skip_angles(t, i + 1);
        if (past != kNpos && past <= hi) i = past - 1;
        continue;
      }
      if (tok.text == "enum") {
        // Skip the whole enumerator list; nothing inside is a symbol.
        for (std::size_t j = i + 1; j < hi; ++j) {
          if (is_p(t[j], ";")) {
            i = j;
            break;
          }
          if (is_p(t[j], "{")) {
            const std::size_t close = match_brace(t, j);
            i = close == kNpos ? hi - 1 : close;
            break;
          }
        }
        decl_start = i + 1;
        continue;
      }
      if (tok.text == "namespace") {
        std::size_t j = i + 1;
        while (j < hi && (t[j].kind == TokKind::Identifier || is_p(t[j], "::"))) {
          ++j;
        }
        if (j < hi && is_p(t[j], "{")) {
          const std::size_t close = match_brace(t, j);
          if (close != kNpos && close <= hi) {
            scan_scope(j + 1, close, scope);
            i = close;
            decl_start = i + 1;
            continue;
          }
        }
        continue;
      }
      if (tok.text == "class" || tok.text == "struct" || tok.text == "union") {
        std::string name;
        std::size_t j = i + 1;
        for (; j < hi; ++j) {
          if (t[j].kind == TokKind::Identifier && name.empty() &&
              t[j].text != "alignas" && t[j].text != "final") {
            name = t[j].text;
            continue;
          }
          if (t[j].kind != TokKind::Punct) continue;
          if (t[j].text == "<") {
            const std::size_t sa = skip_angles(t, j);
            if (sa == kNpos) break;
            j = sa - 1;
            continue;
          }
          if (t[j].text == ";" || t[j].text == "(" || t[j].text == ")" ||
              t[j].text == "=" ) {
            break;  // forward declaration / elaborated type in a signature
          }
          if (t[j].text == "{") {
            const std::size_t close = match_brace(t, j);
            if (close == kNpos || close > hi) break;
            scan_scope(j + 1, close,
                       name.empty() ? scope : scope + name + "::");
            i = close;
            break;
          }
        }
        decl_start = i + 1;
        continue;
      }

      // Function definition candidate: [~]qualified-name "(" ... ")" ... "{"
      if (i + 1 < hi && is_p(t[i + 1], "(") &&
          !call_blacklist().count(tok.text)) {
        const std::size_t close = match_paren(t, i + 1);
        if (close == kNpos || close >= hi) continue;
        const std::size_t body = find_body_after(close, hi);
        if (body == kNpos) continue;
        const std::size_t body_close = match_brace(t, body);
        if (body_close == kNpos || body_close > hi) continue;
        // Qualified name, walking back over "ident ::" pairs.
        std::string name = tok.text;
        std::size_t k = i;
        while (k >= 2 && is_p(t[k - 1], "::") &&
               t[k - 2].kind == TokKind::Identifier) {
          name = t[k - 2].text + "::" + name;
          k -= 2;
        }
        if (k >= 1 && is_p(t[k - 1], "~")) name = "~" + name;
        IndexedSymbol sym;
        sym.name = name.find("::") != std::string::npos ? name : scope + name;
        const std::size_t ds = std::min(decl_start, i);
        sym.decl_line = t[ds < hi ? ds : i].line;
        sym.name_line = tok.line;
        sym.body_begin_line = t[body].line;
        sym.body_end_line = t[body_close].line;
        for (std::size_t a = ds; a < i; ++a) {
          if (is_id(t[a], "UVMSIM_HOT")) sym.is_hot = true;
          if (is_id(t[a], "UVMSIM_ORDERED")) sym.is_ordered = true;
        }
        const int sidx = static_cast<int>(out.symbols.size());
        out.symbols.push_back(std::move(sym));
        scan_body(sidx, body, body_close);
        i = body_close;
        decl_start = i + 1;
        continue;
      }
    }
  }

  /// From the ")" closing a parameter list, walks the trailing tokens
  /// (cv-qualifiers, noexcept, override, trailing return, ctor-init list)
  /// to the body "{". kNpos when the declaration has no body here.
  std::size_t find_body_after(std::size_t close, std::size_t hi) {
    std::size_t j = close + 1;
    while (j < hi) {
      const Token& tok = t[j];
      if (tok.kind == TokKind::Identifier) {
        ++j;
        continue;
      }
      if (tok.kind != TokKind::Punct) return kNpos;
      const std::string& p = tok.text;
      if (p == "{") return j;
      if (p == ";" || p == ",") return kNpos;
      if (p == "=") return kNpos;  // = default / = delete / = 0 / var init
      if (p == "(") {  // noexcept(...) / attribute argument list
        const std::size_t c = match_paren(t, j);
        if (c == kNpos) return kNpos;
        j = c + 1;
        continue;
      }
      if (p == "[") {  // [[attributes]]
        const std::size_t c = match_bracket(t, j);
        if (c == kNpos) return kNpos;
        j = c + 1;
        continue;
      }
      if (p == "<") {
        const std::size_t sa = skip_angles(t, j);
        if (sa == kNpos) return kNpos;
        j = sa;
        continue;
      }
      if (p == ":") {  // ctor-init list: ident (...)|{...} [, ...] then body
        ++j;
        while (j < hi) {
          while (j < hi && (t[j].kind == TokKind::Identifier ||
                            is_p(t[j], "::"))) {
            ++j;
          }
          if (j < hi && is_p(t[j], "<")) {
            const std::size_t sa = skip_angles(t, j);
            if (sa == kNpos) return kNpos;
            j = sa;
          }
          if (j >= hi) return kNpos;
          if (is_p(t[j], "(")) {
            const std::size_t c = match_paren(t, j);
            if (c == kNpos) return kNpos;
            j = c + 1;
          } else if (is_p(t[j], "{")) {
            // Could be a brace initializer or, with an empty init list
            // remainder, the body itself; an initializer brace is always
            // followed by "," or "{".
            const std::size_t c = match_brace(t, j);
            if (c == kNpos || c + 1 >= hi) return kNpos;
            if (is_p(t[c + 1], ",") || is_p(t[c + 1], "{")) {
              j = c + 1;
            } else {
              return j;  // this brace was the body
            }
          } else {
            return kNpos;
          }
          if (j < hi && is_p(t[j], ",")) {
            ++j;
            continue;
          }
          if (j < hi && is_p(t[j], "{")) return j;
          return kNpos;
        }
        return kNpos;
      }
      if (p == "->" || p == "&" || p == "&&" || p == "*" || p == "::" ||
          p == ">") {
        ++j;
        continue;
      }
      return kNpos;
    }
    return kNpos;
  }

  /// True when the "[" at j introduces a lambda (expression position) as
  /// opposed to a subscript, array extent, or attribute.
  bool lambda_intro_ok(std::size_t j, std::size_t rb) const {
    if (j == 0) return false;
    const Token& prev = t[j - 1];
    const bool position_ok =
        (prev.kind == TokKind::Punct && prev.text != ")" &&
         prev.text != "]" && prev.text != "}") ||
        is_id(prev, "return");
    if (!position_ok) return false;
    for (std::size_t k = j + 1; k < rb; ++k) {
      if (is_p(t[k], "[")) return false;  // [[attribute]]
    }
    return true;
  }

  struct CallCtx {
    std::size_t close;
    LaneRole role;
  };

  void scan_body(int sidx, std::size_t open, std::size_t close) {
    collect_locals(sidx, open, close);
    std::vector<CallCtx> ctx;
    for (std::size_t j = open + 1; j < close; ++j) {
      while (!ctx.empty() && j > ctx.back().close) ctx.pop_back();
      const Token& tok = t[j];

      // Nested lambda.
      if (is_p(tok, "[")) {
        const std::size_t rb = match_bracket(t, j);
        if (rb == kNpos || rb >= close || !lambda_intro_ok(j, rb)) continue;
        // Walk from the capture list to the body brace.
        int pd = 0;
        std::size_t params = kNpos;
        std::size_t body = kNpos;
        for (std::size_t k = rb + 1; k < close; ++k) {
          if (t[k].kind != TokKind::Punct) continue;
          if (t[k].text == "(") {
            if (pd == 0 && params == kNpos) params = k;
            ++pd;
          }
          if (t[k].text == ")") --pd;
          if (pd < 0) break;
          if (pd == 0 && (t[k].text == "," || t[k].text == ";" ||
                          t[k].text == "]")) {
            break;
          }
          if (pd == 0 && t[k].text == "{") {
            body = k;
            break;
          }
        }
        if (body == kNpos) continue;
        const std::size_t bend = match_brace(t, body);
        if (bend == kNpos || bend > close) continue;
        IndexedSymbol lam;
        lam.name = out.symbols[static_cast<std::size_t>(sidx)].name +
                   "::{lambda}";
        lam.decl_line = tok.line;
        lam.name_line = tok.line;
        lam.body_begin_line = t[body].line;
        lam.body_end_line = t[bend].line;
        lam.is_lambda = true;
        lam.parent = sidx;
        lam.lane_role = ctx.empty() ? LaneRole::None : ctx.back().role;
        for (std::size_t k = j + 1; k < rb; ++k) {
          if (!is_p(t[k], "&")) continue;
          if (k + 1 < rb && t[k + 1].kind == TokKind::Identifier) {
            lam.ref_captures.push_back(t[k + 1].text);
            ++k;
          } else {
            lam.default_ref_capture = true;
          }
        }
        const int lidx = static_cast<int>(out.symbols.size());
        out.symbols.push_back(std::move(lam));
        if (params != kNpos) collect_params(lidx, params);
        out.symbols[static_cast<std::size_t>(sidx)].calls.push_back(
            {out.symbols[static_cast<std::size_t>(lidx)].name, tok.line,
             lidx});
        scan_body(lidx, body, bend);
        j = bend;
        continue;
      }

      if (tok.kind == TokKind::Punct) {
        record_write(sidx, open, j, close);
        continue;
      }
      if (tok.kind != TokKind::Identifier) continue;
      IndexedSymbol& sym = out.symbols[static_cast<std::size_t>(sidx)];
      const bool next_is_call = j + 1 < close && is_p(t[j + 1], "(");

      // Range-for loops, kept for the unordered-sink rule.
      if (tok.text == "for" && next_is_call) {
        record_loop(sidx, j, close);
        continue;
      }

      // Call sites.
      if (next_is_call && !call_blacklist().count(tok.text)) {
        std::string name = tok.text;
        std::size_t k = j;
        while (k >= 2 && is_p(t[k - 1], "::") &&
               t[k - 2].kind == TokKind::Identifier) {
          name = t[k - 2].text + "::" + name;
          k -= 2;
        }
        if (name.rfind("std::", 0) != 0) {
          sym.calls.push_back({name, tok.line, -1});
          const std::string base = last_component(name);
          if (sym.first_merge_line == 0 &&
              (contains_ci(base, "merge") || base == "for_lanes" ||
               base == "lane_reduce")) {
            sym.first_merge_line = tok.line;
          }
          LaneRole role = LaneRole::None;
          const bool member_call =
              k >= 1 && (is_p(t[k - 1], ".") || is_p(t[k - 1], "->"));
          if (base == "for_lanes" && member_call) role = LaneRole::ForLanes;
          if (base == "parallel_for" && member_call) {
            role = LaneRole::ParallelFor;
          }
          if (base == "lane_reduce") role = LaneRole::LaneReduce;
          if (base == "submit" && member_call) role = LaneRole::Submit;
          if ((base == "map" || base == "sweep") && member_call) {
            role = LaneRole::SweepMap;
          }
          if (role != LaneRole::None) {
            const std::size_t c = match_paren(t, j + 1);
            if (c != kNpos && c < close) ctx.push_back({c, role});
          }
        }
      }

      // Fact sites.
      if (tok.text == "new" && !(j >= 1 && is_id(t[j - 1], "operator"))) {
        sym.alloc_sites.push_back({"new", tok.line});
      } else if (alloc_ids().count(tok.text) &&
                 (next_is_call || (j + 1 < close && is_p(t[j + 1], "<")))) {
        sym.alloc_sites.push_back({tok.text, tok.line});
      }
      if (io_ids().count(tok.text)) sym.io_sites.push_back({tok.text, tok.line});
      if (clock_ids().count(tok.text) ||
          (tok.text == "time" && next_is_call)) {
        sym.clock_sites.push_back({tok.text, tok.line});
      }
      if (rng_ids().count(tok.text) || (tok.text == "rand" && next_is_call)) {
        sym.rng_sites.push_back({tok.text, tok.line});
      }
      if ((tok.text.size() > 1 && tok.text.back() == '_') ||
          lane_owned_set.count(tok.text)) {
        auto& mu = sym.member_uses;
        if (mu.empty() || mu.back().what != tok.text ||
            mu.back().line != tok.line) {
          mu.push_back({tok.text, tok.line});
        }
      }
    }
  }

  /// Records parameter names of the lambda whose parameter list opens at
  /// `params` as locals.
  void collect_params(int sidx, std::size_t params) {
    const std::size_t close = match_paren(t, params);
    if (close == kNpos) return;
    IndexedSymbol& sym = out.symbols[static_cast<std::size_t>(sidx)];
    int pd = 0;
    std::string last;
    for (std::size_t k = params; k <= close; ++k) {
      if (t[k].kind == TokKind::Punct) {
        if (t[k].text == "(") ++pd;
        if (t[k].text == ")") --pd;
        if ((t[k].text == "," && pd == 1) || (t[k].text == ")" && pd == 0)) {
          if (!last.empty()) sym.locals.push_back(last);
          last.clear();
        }
      } else if (t[k].kind == TokKind::Identifier) {
        last = t[k].text;
      }
    }
  }

  /// Declaration-shaped identifiers in the body become locals: an
  /// identifier with a type-ish predecessor and a declarator-ish successor.
  /// Over-matching only hides findings; it never invents one.
  void collect_locals(int sidx, std::size_t open, std::size_t close) {
    IndexedSymbol& sym = out.symbols[static_cast<std::size_t>(sidx)];
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].kind != TokKind::Identifier || k == 0 || k + 1 >= t.size()) {
        continue;
      }
      const Token& prev = t[k - 1];
      const Token& next = t[k + 1];
      const bool typeish_prev =
          prev.kind == TokKind::Identifier ||
          (prev.kind == TokKind::Punct &&
           (prev.text == ">" || prev.text == "*" || prev.text == "&" ||
            prev.text == "&&"));
      const bool declish_next =
          next.kind == TokKind::Punct &&
          (next.text == "=" || next.text == "{" || next.text == ";" ||
           next.text == ":" || next.text == "(");
      if (typeish_prev && declish_next) sym.locals.push_back(t[k].text);
    }
  }

  /// Base identifier of the postfix chain written just before `op`, plus
  /// whether any subscript along the chain names a lambda-local.
  void record_write(int sidx, std::size_t open, std::size_t op,
                    std::size_t close) {
    IndexedSymbol& sym = out.symbols[static_cast<std::size_t>(sidx)];
    if (!sym.is_lambda) return;
    static const std::set<std::string_view> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>="};
    const Token& tok = t[op];
    std::string target;
    bool lane_indexed = false;
    const std::set<std::string> locals(sym.locals.begin(), sym.locals.end());
    if (tok.text == "++" || tok.text == "--") {
      if (op + 1 < close && t[op + 1].kind == TokKind::Identifier) {
        target = t[op + 1].text;  // prefix
      } else {
        target = walk_target(open, op, locals, lane_indexed);
      }
    } else if (kAssignOps.count(tok.text)) {
      target = walk_target(open, op, locals, lane_indexed);
    }
    if (target.empty()) return;
    sym.lane_writes.push_back({target, tok.line, lane_indexed});
  }

  std::string walk_target(std::size_t lo, std::size_t op,
                          const std::set<std::string>& locals,
                          bool& lane_indexed) {
    std::size_t pos = op;
    // Compound |= &= ^= lex as two tokens; step over the operator half.
    if (pos > lo && is_p(t[op], "=") &&
        (is_p(t[pos - 1], "|") || is_p(t[pos - 1], "&") ||
         is_p(t[pos - 1], "^"))) {
      --pos;
    }
    while (pos > lo) {
      --pos;
      const Token& tok = t[pos];
      if (tok.kind == TokKind::Punct && tok.text == "]") {
        int depth = 0;
        while (pos > lo) {
          if (is_p(t[pos], "]")) ++depth;
          if (is_p(t[pos], "[") && --depth == 0) break;
          if (t[pos].kind == TokKind::Identifier && locals.count(t[pos].text)) {
            lane_indexed = true;
          }
          --pos;
        }
        continue;
      }
      if (tok.kind == TokKind::Identifier) {
        if (pos > lo && (is_p(t[pos - 1], ".") || is_p(t[pos - 1], "->") ||
                         is_p(t[pos - 1], "::"))) {
          --pos;
          continue;
        }
        return tok.text;
      }
      return "";  // parenthesized / dereferenced target: give up silently
    }
    return "";
  }

  void record_loop(int sidx, std::size_t for_tok, std::size_t scope_close) {
    const std::size_t open = for_tok + 1;
    const std::size_t close = match_paren(t, open);
    if (close == kNpos || close >= scope_close) return;
    int depth = 0;
    std::size_t colon = kNpos;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].kind != TokKind::Punct) continue;
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") --depth;
      if (depth == 1 && t[j].text == ";") return;  // classic for loop
      if (depth == 1 && t[j].text == ":") {
        colon = j;
        break;
      }
    }
    if (colon == kNpos) return;
    UnorderedLoop loop;
    loop.line = t[for_tok].line;
    loop.symbol = sidx;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind == TokKind::Identifier && t[j].text != "std") {
        loop.containers.push_back(t[j].text);
      }
    }
    // Body: the following brace block, or the single statement up to ";".
    std::size_t blo = close + 1;
    std::size_t bhi;
    if (blo < scope_close && is_p(t[blo], "{")) {
      bhi = match_brace(t, blo);
      if (bhi == kNpos || bhi > scope_close) return;
    } else {
      bhi = blo;
      while (bhi < scope_close && !is_p(t[bhi], ";")) ++bhi;
    }
    for (std::size_t j = blo; j < bhi; ++j) {
      if (t[j].kind != TokKind::Identifier) continue;
      if (io_ids().count(t[j].text)) loop.direct_io = true;
      if (j + 1 < bhi && is_p(t[j + 1], "(") &&
          !call_blacklist().count(t[j].text)) {
        std::string name = t[j].text;
        std::size_t k = j;
        while (k >= 2 && is_p(t[k - 1], "::") &&
               t[k - 2].kind == TokKind::Identifier) {
          name = t[k - 2].text + "::" + name;
          k -= 2;
        }
        if (name.rfind("std::", 0) != 0) {
          loop.body_calls.push_back({name, t[j].line, -1});
        }
      }
    }
    out.loops.push_back(std::move(loop));
  }
};

// ---------------------------------------------------------------------------
// Cache serialization: line-oriented, versioned, names last on each line.
// ---------------------------------------------------------------------------

void write_sites(std::ostream& os, const char* tag,
                 const std::vector<FactSite>& sites) {
  for (const FactSite& s : sites) {
    os << tag << ' ' << s.line << ' ' << s.what << '\n';
  }
}

bool read_rest(std::istringstream& ls, std::string& out) {
  std::getline(ls, out);
  while (!out.empty() && (out.front() == ' ')) out.erase(out.begin());
  return !out.empty();
}

}  // namespace

std::uint64_t content_hash(const std::string& content) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : content) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

FileIndex index_file(const LexedFile& lx) {
  Parser p(lx);
  p.run();
  return std::move(p.out);
}

void write_file_index(std::ostream& os, const FileIndex& fi) {
  os << "uvmsim-index " << kIndexFormatVersion << '\n';
  os << "hash " << fi.hash << '\n';
  os << "path " << fi.path << '\n';
  for (const std::string& n : fi.lane_owned) os << "laneowned " << n << '\n';
  for (const std::string& n : fi.atomic_names) os << "atomic " << n << '\n';
  for (const IndexedSymbol& s : fi.symbols) {
    os << "sym " << s.decl_line << ' ' << s.name_line << ' '
       << s.body_begin_line << ' ' << s.body_end_line << ' '
       << (s.is_hot ? 1 : 0) << (s.is_ordered ? 1 : 0)
       << (s.is_lambda ? 1 : 0) << (s.default_ref_capture ? 1 : 0) << ' '
       << s.parent << ' ' << static_cast<int>(s.lane_role) << ' '
       << s.first_merge_line << ' ' << s.name << '\n';
    for (const std::string& c : s.ref_captures) os << "cap " << c << '\n';
    for (const std::string& l : s.locals) os << "local " << l << '\n';
    for (const CallSite& c : s.calls) {
      os << "call " << c.line << ' ' << c.local_target << ' ' << c.name
         << '\n';
    }
    write_sites(os, "alloc", s.alloc_sites);
    write_sites(os, "io", s.io_sites);
    write_sites(os, "clock", s.clock_sites);
    write_sites(os, "rng", s.rng_sites);
    write_sites(os, "muse", s.member_uses);
    for (const LaneWrite& w : s.lane_writes) {
      os << "write " << w.line << ' ' << (w.lane_indexed ? 1 : 0) << ' '
         << w.target << '\n';
    }
  }
  for (const UnorderedLoop& l : fi.loops) {
    os << "loop " << l.line << ' ' << l.symbol << ' '
       << (l.direct_io ? 1 : 0) << '\n';
    for (const std::string& c : l.containers) os << "lcont " << c << '\n';
    for (const CallSite& c : l.body_calls) {
      os << "lcall " << c.line << ' ' << c.name << '\n';
    }
  }
  os << "end\n";
}

bool read_file_index(std::istream& is, FileIndex& fi) {
  fi = FileIndex{};
  std::string line;
  if (!std::getline(is, line)) return false;
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    if (!(ls >> magic >> version) || magic != "uvmsim-index" ||
        version != kIndexFormatVersion) {
      return false;
    }
  }
  IndexedSymbol* sym = nullptr;
  UnorderedLoop* loop = nullptr;
  bool saw_end = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "end") {
      saw_end = true;
      break;
    }
    if (tag == "hash") {
      if (!(ls >> fi.hash)) return false;
    } else if (tag == "path") {
      if (!read_rest(ls, fi.path)) return false;
    } else if (tag == "laneowned") {
      std::string n;
      if (!read_rest(ls, n)) return false;
      fi.lane_owned.push_back(n);
    } else if (tag == "atomic") {
      std::string n;
      if (!read_rest(ls, n)) return false;
      fi.atomic_names.push_back(n);
    } else if (tag == "sym") {
      IndexedSymbol s;
      std::string flags;
      int role = 0;
      if (!(ls >> s.decl_line >> s.name_line >> s.body_begin_line >>
            s.body_end_line >> flags >> s.parent >> role >>
            s.first_merge_line)) {
        return false;
      }
      if (flags.size() != 4) return false;
      s.is_hot = flags[0] == '1';
      s.is_ordered = flags[1] == '1';
      s.is_lambda = flags[2] == '1';
      s.default_ref_capture = flags[3] == '1';
      s.lane_role = static_cast<LaneRole>(role);
      if (!read_rest(ls, s.name)) return false;
      fi.symbols.push_back(std::move(s));
      sym = &fi.symbols.back();
      loop = nullptr;
    } else if (tag == "loop") {
      UnorderedLoop l;
      int dio = 0;
      if (!(ls >> l.line >> l.symbol >> dio)) return false;
      l.direct_io = dio != 0;
      fi.loops.push_back(std::move(l));
      loop = &fi.loops.back();
      sym = nullptr;
    } else if (tag == "lcont" || tag == "lcall") {
      if (loop == nullptr) return false;
      if (tag == "lcont") {
        std::string n;
        if (!read_rest(ls, n)) return false;
        loop->containers.push_back(n);
      } else {
        CallSite c;
        if (!(ls >> c.line)) return false;
        if (!read_rest(ls, c.name)) return false;
        loop->body_calls.push_back(std::move(c));
      }
    } else {
      if (sym == nullptr) return false;
      if (tag == "cap" || tag == "local") {
        std::string n;
        if (!read_rest(ls, n)) return false;
        if (tag == "cap") {
          sym->ref_captures.push_back(n);
        } else {
          sym->locals.push_back(n);
        }
      } else if (tag == "call") {
        CallSite c;
        if (!(ls >> c.line >> c.local_target)) return false;
        if (!read_rest(ls, c.name)) return false;
        sym->calls.push_back(std::move(c));
      } else if (tag == "write") {
        LaneWrite w;
        int li = 0;
        if (!(ls >> w.line >> li)) return false;
        w.lane_indexed = li != 0;
        if (!read_rest(ls, w.target)) return false;
        sym->lane_writes.push_back(std::move(w));
      } else if (tag == "alloc" || tag == "io" || tag == "clock" ||
                 tag == "rng" || tag == "muse") {
        FactSite s;
        if (!(ls >> s.line)) return false;
        if (!read_rest(ls, s.what)) return false;
        if (tag == "alloc") sym->alloc_sites.push_back(std::move(s));
        else if (tag == "io") sym->io_sites.push_back(std::move(s));
        else if (tag == "clock") sym->clock_sites.push_back(std::move(s));
        else if (tag == "rng") sym->rng_sites.push_back(std::move(s));
        else sym->member_uses.push_back(std::move(s));
      } else {
        return false;  // unknown tag: treat the entry as corrupt
      }
    }
  }
  return saw_end;
}

FileIndex index_file_cached(const LexedFile& lx, std::uint64_t hash,
                            const std::string& cache_dir,
                            IndexCacheStats* stats) {
  if (cache_dir.empty()) {
    if (stats != nullptr) ++stats->misses;
    FileIndex fi = index_file(lx);
    fi.hash = hash;
    return fi;
  }
  const fs::path dir(cache_dir);
  std::ostringstream name;
  name << std::hex << content_hash(lx.path) << ".idx";
  const fs::path entry = dir / name.str();
  {
    std::ifstream in(entry);
    if (in) {
      FileIndex fi;
      if (read_file_index(in, fi) && fi.hash == hash) {
        if (stats != nullptr) ++stats->hits;
        return fi;
      }
    }
  }
  if (stats != nullptr) ++stats->misses;
  FileIndex fi = index_file(lx);
  fi.hash = hash;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) {
    std::ofstream out(entry, std::ios::trunc);
    if (out) write_file_index(out, fi);
  }
  return fi;
}

}  // namespace uvmsim::lint
