// Whole-program symbol index for uvmsim_lint's project mode.
//
// index_file() parses one lexed TU into symbols — functions, methods, and
// lambdas — with call edges, lambda capture lists, annotation flags
// (UVMSIM_HOT / UVMSIM_ORDERED), and the "fact sites" the semantic rules
// consume (allocation / I/O / clock / RNG identifiers, member uses, writes
// inside lane bodies, range-for loops). The per-TU result is persisted to an
// on-disk cache keyed by the file's content hash, so incremental CI runs
// re-index only edited TUs (index_file_cached + IndexCacheStats).
//
// This is deliberately not a C++ front end: symbols are recognized by token
// shape (qualified-name + parameter list + body brace), calls by
// `identifier (`, lambdas by a capture introducer in expression position.
// Over-approximation is fine — the rule passes in callgraph.cpp/dataflow.cpp
// are tuned so extra edges can only add findings that a typed suppression or
// the baseline documents, never change simulation behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lexer.h"

namespace uvmsim::lint {

/// A call site inside a symbol body. `name` is the spelled callee —
/// possibly qualified ("Preprocessor::fetch"), never macro-expanded. When
/// the callee is a lambda defined in the same file, `local_target` holds
/// its index in FileIndex::symbols and `name` is the lambda's display name.
struct CallSite {
  std::string name;
  int line = 0;
  int local_target = -1;
};

/// One occurrence of a rule-relevant identifier (an allocation call, an
/// I/O stream, a clock, an RNG engine, or a member-convention use).
struct FactSite {
  std::string what;
  int line = 0;
};

/// A write (assignment / increment / decrement) inside a lambda body, with
/// the base identifier of the written chain and whether any subscript along
/// the chain indexes by a lambda-local (the lane-indexed escape hatch).
struct LaneWrite {
  std::string target;
  int line = 0;
  bool lane_indexed = false;
};

/// Which task-spawning call a lambda was passed to, if any.
enum class LaneRole : std::uint8_t {
  None = 0,
  ForLanes,
  ParallelFor,
  LaneReduce,
  Submit,
  SweepMap,
};

struct IndexedSymbol {
  std::string name;        ///< best-effort qualified ("ThreadPool::for_lanes")
  int decl_line = 0;       ///< first line of the declaration (annotations)
  int name_line = 0;       ///< line of the name token / lambda introducer
  int body_begin_line = 0; ///< line of the opening "{"
  int body_end_line = 0;   ///< line of the matching "}"
  bool is_hot = false;     ///< UVMSIM_HOT on the definition
  bool is_ordered = false; ///< UVMSIM_ORDERED on the definition
  bool is_lambda = false;
  int parent = -1;                       ///< enclosing symbol (lambdas)
  LaneRole lane_role = LaneRole::None;   ///< task call the lambda feeds
  bool default_ref_capture = false;      ///< [&] present
  std::vector<std::string> ref_captures; ///< names captured by reference
  std::vector<std::string> locals;       ///< params + body declarations
  std::vector<CallSite> calls;
  std::vector<FactSite> alloc_sites;  ///< new/make_unique/malloc/...
  std::vector<FactSite> io_sites;     ///< cout/printf/ofstream/...
  std::vector<FactSite> clock_sites;  ///< system_clock/steady_clock/...
  std::vector<FactSite> rng_sites;    ///< mt19937/random_device/...
  /// Uses of member-convention identifiers (trailing '_') and of names the
  /// file declares UVMSIM_LANE_OWNED — the ordering-authority purity rule's
  /// read set.
  std::vector<FactSite> member_uses;
  std::vector<LaneWrite> lane_writes;  ///< writes, lambdas only
  /// First line at which lane state is considered merged inside this body:
  /// the first call whose callee names a merge/join/fork-join primitive
  /// (contains "merge", or is for_lanes/lane_reduce). 0 = no merge point.
  int first_merge_line = 0;
};

/// A range-for loop, kept so project mode can re-judge unordered-container
/// iteration by whether the body reaches an output sink.
struct UnorderedLoop {
  int line = 0;
  int symbol = -1;  ///< enclosing symbol index, -1 at file scope
  std::vector<std::string> containers;  ///< identifiers in the range expr
  std::vector<CallSite> body_calls;
  bool direct_io = false;  ///< body itself names an I/O identifier
};

struct FileIndex {
  std::string path;  ///< display path (diagnostics only; not hashed)
  std::uint64_t hash = 0;
  std::vector<IndexedSymbol> symbols;
  std::vector<std::string> lane_owned;    ///< UVMSIM_LANE_OWNED declarations
  std::vector<std::string> atomic_names;  ///< names declared std::atomic<...>
  std::vector<UnorderedLoop> loops;
};

/// FNV-1a 64 over the raw bytes; the cache key.
[[nodiscard]] std::uint64_t content_hash(const std::string& content);

/// Parses one lexed TU. Pure function of the token stream.
[[nodiscard]] FileIndex index_file(const LexedFile& lx);

struct IndexCacheStats {
  std::size_t hits = 0;    ///< TUs served from the on-disk cache
  std::size_t misses = 0;  ///< TUs (re-)parsed this run
};

/// Like index_file, but consults `cache_dir` first: one cache file per TU
/// (named by a hash of the display path) holding the serialized FileIndex
/// plus the content hash it was built from. A hash mismatch or version
/// mismatch re-parses and rewrites just that TU's entry. Empty `cache_dir`
/// disables caching. Cache I/O failures degrade to a plain parse.
[[nodiscard]] FileIndex index_file_cached(const LexedFile& lx,
                                          std::uint64_t hash,
                                          const std::string& cache_dir,
                                          IndexCacheStats* stats);

/// Serialization used by the cache (line-oriented text, versioned).
void write_file_index(std::ostream& os, const FileIndex& fi);
[[nodiscard]] bool read_file_index(std::istream& is, FileIndex& fi);

}  // namespace uvmsim::lint
