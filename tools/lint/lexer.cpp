#include "lexer.h"

#include <array>
#include <cstddef>
#include <string_view>

namespace uvmsim::lint {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character punctuators, longest first so greedy matching is correct.
constexpr std::array<std::string_view, 22> kPuncts = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=", "%="};

}  // namespace

LexedFile lex_file(const std::string& path, const std::string& source) {
  LexedFile out;
  out.path = path;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? source[i + k] : '\0';
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      out.comments.push_back({source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
        if (source[j] == '\n') ++line;
        ++j;
      }
      j = (j + 1 < n) ? j + 2 : n;
      out.comments.push_back({source.substr(i, j - i), start});
      i = j;
      continue;
    }
    // Preprocessor directive: '#' first on its logical line; fold
    // backslash-newline continuations into one SideText.
    if (c == '#' && at_line_start) {
      const int start = line;
      std::string text;
      std::size_t j = i;
      while (j < n) {
        if (source[j] == '\\' && j + 1 < n && source[j + 1] == '\n') {
          text += ' ';
          ++line;
          j += 2;
          continue;
        }
        if (source[j] == '\n') break;
        text += source[j];
        ++j;
      }
      out.directives.push_back({text, start});
      i = j;
      continue;
    }
    at_line_start = false;
    // String literal (ordinary; prefixed/raw handled from the identifier
    // branch below, which owns the prefix characters).
    if (c == '"') {
      const int start = line;
      std::size_t j = i + 1;
      while (j < n) {
        if (source[j] == '\\') {
          j += 2;
          continue;
        }
        if (source[j] == '"') {
          ++j;
          break;
        }
        if (source[j] == '\n') ++line;
        ++j;
      }
      out.tokens.push_back({TokKind::String, source.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      const int start = line;
      std::size_t j = i + 1;
      while (j < n) {
        if (source[j] == '\\') {
          j += 2;
          continue;
        }
        if (source[j] == '\'') {
          ++j;
          break;
        }
        if (source[j] == '\n') {  // stray quote; bail to avoid runaway
          break;
        }
        ++j;
      }
      out.tokens.push_back({TokKind::CharLit, source.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      std::size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (ident_char(d) || d == '.' ||
            (d == '\'' && j + 1 < n && ident_char(source[j + 1]))) {
          // exponent signs: 1e+9, 0x1p-3
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && j + 1 < n &&
              (source[j + 1] == '+' || source[j + 1] == '-')) {
            j += 2;
            continue;
          }
          ++j;
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::Number, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(source[j])) ++j;
      std::string text = source.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim" with optional u8/u/L prefix.
      if (j < n && source[j] == '"' &&
          (text == "R" || text == "u8R" || text == "uR" || text == "LR")) {
        const int start = line;
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && source[k] != '(' && source[k] != '\n') {
          delim += source[k];
          ++k;
        }
        const std::string close = ")" + delim + "\"";
        std::size_t end = source.find(close, k);
        if (end == std::string::npos) {
          end = n;
        } else {
          end += close.size();
        }
        for (std::size_t p = i; p < end && p < n; ++p) {
          if (source[p] == '\n') ++line;
        }
        out.tokens.push_back(
            {TokKind::String, source.substr(i, end - i), start});
        i = end;
        continue;
      }
      out.tokens.push_back({TokKind::Identifier, std::move(text), line});
      i = j;
      continue;
    }
    // Punctuator: greedy multi-char match, else the single character.
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (source.compare(i, p.size(), p) == 0) {
        out.tokens.push_back({TokKind::Punct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace uvmsim::lint
