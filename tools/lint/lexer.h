// Minimal C++ lexer for uvmsim_lint.
//
// The analyzer works at the token level: identifiers, numbers, literals, and
// punctuation, with comments and preprocessor directives captured on the
// side (comments carry suppressions; directives carry includes and pragmas).
// This is deliberately not a full C++ front end — no macro expansion, no
// template instantiation — which keeps the tool dependency-free and fast
// while still being exact enough for identifier-level rules (no substring
// false positives like `transfer_time(` matching a naive `time(` grep).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uvmsim::lint {

enum class TokKind : std::uint8_t {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  Number,      ///< integer/float literal, digit separators included
  String,      ///< string literal (ordinary, prefixed, or raw)
  CharLit,     ///< character literal
  Punct,       ///< operator/punctuator, greedily matched ("::", "->", ...)
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 1;  ///< 1-based line of the token's first character
};

/// A comment (text includes the delimiters) or preprocessor directive line
/// (text is the full logical line, continuations folded), with its line.
struct SideText {
  std::string text;
  int line = 1;
};

struct LexedFile {
  std::string path;                 ///< as passed by the caller
  std::vector<Token> tokens;        ///< code tokens, in order
  std::vector<SideText> comments;   ///< // and /* */ comments, in order
  std::vector<SideText> directives; ///< #... logical lines, in order
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// Punct tokens, unterminated literals run to end of file.
[[nodiscard]] LexedFile lex_file(const std::string& path,
                                 const std::string& source);

}  // namespace uvmsim::lint
