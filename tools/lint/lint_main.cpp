// uvmsim_lint — in-tree static analyzer enforcing the repository's
// determinism, hot-path-allocation, concurrency, and hygiene invariants.
//
//   uvmsim_lint [--json] [--root DIR] [paths...]   lint files/directories
//   uvmsim_lint --project [paths...]               whole-program pass
//   uvmsim_lint --list-rules [--json]              print the rule table
//
// Project mode adds the call-graph/dataflow rules (hot-transitive-*,
// lane-capture-escape, ordered-reads-lane-owned, unordered-sink-iteration),
// supports an on-disk index cache (--cache-dir), SARIF output (--sarif),
// and a findings baseline (--baseline / --write-baseline) so CI fails only
// on new findings.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. With no paths the
// default scan set is `src bench tools` relative to --root (default ".").
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "baseline.h"
#include "rules.h"
#include "sarif.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: uvmsim_lint [--json] [--root DIR] [--project]\n"
        "                   [--cache-dir DIR] [--sarif FILE]\n"
        "                   [--baseline FILE] [--write-baseline FILE]\n"
        "                   [paths...]\n"
        "       uvmsim_lint --list-rules [--json]\n"
        "\n"
        "Lints *.h/*.cpp under the given files/directories (default: src\n"
        "bench tools). Findings go to stdout; exit 1 when any are found.\n"
        "--project enables the whole-program rules; with --baseline only\n"
        "findings absent from the baseline fail the run.\n"
        "Suppress a finding with a mandatory justification:\n"
        "  // uvmsim-lint: allow(<rule-id>, \"why this is safe\")\n"
        "or cover a whole function from the line before its signature:\n"
        "  // uvmsim-lint: suppress(<rule-id>) why this is safe\n";
}

void list_rules(bool json) {
  using uvmsim::lint::all_rules;
  if (json) {
    std::cout << "{\"version\":1,\"rules\":[";
    bool first = true;
    for (const auto& r : all_rules()) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "{\"id\":\"" << r.id << "\",\"category\":\"" << r.category
                << "\",\"summary\":\"" << r.summary << "\"}";
    }
    std::cout << "]}\n";
    return;
  }
  for (const auto& r : all_rules()) {
    std::cout << r.id << "  [" << r.category << "]\n    " << r.summary
              << "\n";
  }
}

void print_text(const std::vector<uvmsim::lint::Finding>& findings) {
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.category << "/"
              << f.rule << "] " << f.message << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool rules_only = false;
  uvmsim::lint::LintOptions opts;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> paths;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "uvmsim_lint: " << flag << " requires an argument\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      rules_only = true;
    } else if (arg == "--project") {
      opts.project = true;
    } else if (arg == "--root") {
      const char* v = need_value(i, "--root");
      if (v == nullptr) return 2;
      opts.root = v;
    } else if (arg == "--cache-dir") {
      const char* v = need_value(i, "--cache-dir");
      if (v == nullptr) return 2;
      opts.cache_dir = v;
    } else if (arg == "--sarif") {
      const char* v = need_value(i, "--sarif");
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--baseline") {
      const char* v = need_value(i, "--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = need_value(i, "--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uvmsim_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (rules_only) {
    list_rules(json);
    return 0;
  }

  if (paths.empty()) {
    paths = {opts.root + "/src", opts.root + "/bench", opts.root + "/tools"};
  }

  uvmsim::lint::Linter linter(opts);
  for (const std::string& p : paths) {
    if (!linter.add_path(p)) {
      std::cerr << "uvmsim_lint: cannot read '" << p << "'\n";
      return 2;
    }
  }

  std::vector<uvmsim::lint::Finding> findings = linter.run();

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::trunc);
    if (!out) {
      std::cerr << "uvmsim_lint: cannot write '" << sarif_path << "'\n";
      return 2;
    }
    uvmsim::lint::write_sarif(out, findings);
  }
  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::trunc);
    if (!out) {
      std::cerr << "uvmsim_lint: cannot write '" << write_baseline_path
                << "'\n";
      return 2;
    }
    uvmsim::lint::write_baseline(out, findings);
    std::cerr << "uvmsim_lint: wrote baseline with " << findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
  }

  std::size_t accepted = 0;
  if (!baseline_path.empty()) {
    std::vector<uvmsim::lint::BaselineEntry> entries;
    std::string error;
    if (!uvmsim::lint::read_baseline(baseline_path, entries, error)) {
      std::cerr << "uvmsim_lint: " << error << "\n";
      return 2;
    }
    std::vector<uvmsim::lint::Finding> fresh;
    std::vector<uvmsim::lint::Finding> known;
    std::vector<std::string> stale;
    uvmsim::lint::apply_baseline(findings, entries, fresh, known, stale);
    accepted = known.size();
    for (const std::string& id : stale) {
      std::cerr << "uvmsim_lint: note: stale baseline entry '" << id
                << "' matched no finding (fixed? remove it)\n";
    }
    findings = std::move(fresh);
  }

  if (json) {
    uvmsim::lint::write_findings_json(std::cout, findings);
  } else {
    print_text(findings);
    std::string tail = findings.empty()
                           ? "uvmsim_lint: clean"
                           : "uvmsim_lint: " +
                                 std::to_string(findings.size()) +
                                 " finding(s)";
    if (accepted > 0) {
      tail += " (" + std::to_string(accepted) + " baselined)";
    }
    const auto cache = linter.cache_report();
    if (cache.hits + cache.misses > 0 && !opts.cache_dir.empty()) {
      tail += " [index cache: " + std::to_string(cache.hits) + " hit, " +
              std::to_string(cache.misses) + " miss]";
    }
    std::cout << tail << "\n";
  }
  return findings.empty() ? 0 : 1;
}
