// uvmsim_lint — in-tree static analyzer enforcing the repository's
// determinism, hot-path-allocation, concurrency, and hygiene invariants.
//
//   uvmsim_lint [--json] [--root DIR] [paths...]   lint files/directories
//   uvmsim_lint --list-rules [--json]              print the rule table
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. With no paths the
// default scan set is `src bench tools` relative to --root (default ".").
#include <iostream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "rules.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: uvmsim_lint [--json] [--root DIR] [paths...]\n"
        "       uvmsim_lint --list-rules [--json]\n"
        "\n"
        "Lints *.h/*.cpp under the given files/directories (default: src\n"
        "bench tools). Findings go to stdout; exit 1 when any are found.\n"
        "Suppress a finding with a mandatory justification:\n"
        "  // uvmsim-lint: allow(<rule-id>, \"why this is safe\")\n";
}

void list_rules(bool json) {
  using uvmsim::lint::all_rules;
  if (json) {
    std::cout << "{\"version\":1,\"rules\":[";
    bool first = true;
    for (const auto& r : all_rules()) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "{\"id\":\"" << r.id << "\",\"category\":\"" << r.category
                << "\",\"summary\":\"" << r.summary << "\"}";
    }
    std::cout << "]}\n";
    return;
  }
  for (const auto& r : all_rules()) {
    std::cout << r.id << "  [" << r.category << "]\n    " << r.summary
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool rules_only = false;
  uvmsim::lint::LintOptions opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      rules_only = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "uvmsim_lint: --root requires a directory\n";
        return 2;
      }
      opts.root = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uvmsim_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (rules_only) {
    list_rules(json);
    return 0;
  }

  if (paths.empty()) {
    paths = {opts.root + "/src", opts.root + "/bench", opts.root + "/tools"};
  }

  uvmsim::lint::Linter linter(opts);
  for (const std::string& p : paths) {
    if (!linter.add_path(p)) {
      std::cerr << "uvmsim_lint: cannot read '" << p << "'\n";
      return 2;
    }
  }

  const std::vector<uvmsim::lint::Finding> findings = linter.run();
  if (json) {
    uvmsim::lint::write_findings_json(std::cout, findings);
  } else {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.category << "/"
                << f.rule << "] " << f.message << "\n";
    }
    std::cout << (findings.empty() ? "uvmsim_lint: clean\n"
                                   : "uvmsim_lint: " +
                                         std::to_string(findings.size()) +
                                         " finding(s)\n");
  }
  return findings.empty() ? 0 : 1;
}
