#include "rules.h"

namespace uvmsim::lint {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      // -- D: determinism ----------------------------------------------------
      {"banned-random", "determinism",
       "std::rand/random_device/mt19937/... outside sim/rng.*; all "
       "randomness must flow through the seeded, splittable uvmsim::Rng"},
      {"banned-clock", "determinism",
       "time()/system_clock (everywhere) and steady_clock/"
       "high_resolution_clock outside sim/trace.* and bench/; simulated "
       "time comes from sim/time.h"},
      {"unordered-iteration", "determinism",
       "range-for over an unordered container; iteration order depends on "
       "hashing/address layout — iterate a sorted view instead (per-file "
       "mode only; --project supersedes it with unordered-sink-iteration)"},
      {"unordered-sink-iteration", "determinism",
       "range-for over an unordered container whose body prints or calls "
       "code that transitively can; hash order would leak into output "
       "(--project replacement for unordered-iteration)"},
      {"ordered-reads-lane-owned", "determinism",
       "code reachable from a UVMSIM_ORDERED function reads "
       "UVMSIM_LANE_OWNED state before the merge point; the serial walk "
       "may only consume lane accumulators after the lane-order merge "
       "(--project only)"},
      {"pointer-keyed-container", "determinism",
       "std::map/std::set keyed by a raw pointer; ordering follows the "
       "allocator and varies run to run — key by a stable id"},
      {"thread-id", "determinism",
       "std::this_thread::get_id() in product code; results must not depend "
       "on which pool worker ran a task"},
      // -- A: hot-path allocation -------------------------------------------
      {"hot-alloc", "allocation",
       "new/make_unique/make_shared/malloc inside a UVMSIM_HOT function; the "
       "schedule->fire and service paths must not heap-allocate"},
      {"hot-local-container", "allocation",
       "allocating std:: container named inside a UVMSIM_HOT function; use "
       "preallocated members or spans"},
      {"hot-transitive-alloc", "allocation",
       "heap allocation in code transitively callable from a UVMSIM_HOT "
       "function; reported with the call chain (--project only)"},
      {"hot-transitive-io", "allocation",
       "I/O in code transitively callable from a UVMSIM_HOT function "
       "(--project only)"},
      {"hot-transitive-clock", "determinism",
       "wall-clock read in code transitively callable from a UVMSIM_HOT "
       "function (--project only)"},
      {"hot-transitive-random", "determinism",
       "nondeterministic RNG in code transitively callable from a "
       "UVMSIM_HOT function (--project only)"},
      // -- C: concurrency ----------------------------------------------------
      {"mutable-static", "concurrency",
       "non-const, non-atomic static; shared mutable state is reachable from "
       "SweepRunner/ThreadPool tasks — make it const/atomic or guard it"},
      {"task-io", "concurrency",
       "stdout/stderr from a lambda passed to ThreadPool::submit/parallel_for "
       "or SweepRunner::map/sweep; tasks collect, the caller prints (keeps "
       "sweep stdout byte-identical for any UVMSIM_THREADS)"},
      {"task-shared-state", "concurrency",
       "Tracer/Profiler touched from a pool task; per-run instances owned by "
       "the task are fine — document that with a typed suppression"},
      {"lane-shared-write", "concurrency",
       "write to non-lane-local state (member or by-reference capture) "
       "inside a for_lanes/lane_reduce lane body; lanes fill per-lane "
       "accumulators and the caller merges in lane order — suppress only on "
       "the serial merge step (per-file mode only; --project supersedes it "
       "with lane-capture-escape)"},
      {"lane-capture-escape", "concurrency",
       "by-reference capture (or captured member state) mutated inside a "
       "for_lanes/parallel_for lane body without being lane-indexed, "
       "std::atomic, or UVMSIM_LANE_OWNED (--project replacement for "
       "lane-shared-write)"},
      // -- H: hygiene --------------------------------------------------------
      {"using-namespace-header", "hygiene",
       "using namespace at header scope leaks into every includer"},
      {"assert-side-effect", "hygiene",
       "assert() argument contains ++/--/assignment; NDEBUG builds would "
       "change behavior"},
      {"missing-include", "hygiene",
       "header uses a std:: name without directly including the header that "
       "provides it (include-what-you-use lite)"},
      {"missing-pragma-once", "hygiene",
       "header has neither #pragma once nor an include guard"},
      {"include-cycle", "hygiene",
       "project headers include each other in a cycle"},
      // -- meta --------------------------------------------------------------
      {"suppression-unknown-rule", "meta",
       "uvmsim-lint: allow(...) names a rule id that does not exist"},
      {"suppression-missing-justification", "meta",
       "uvmsim-lint: allow(...) lacks the mandatory justification string"},
  };
  return kRules;
}

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& r : all_rules()) {
    if (r.id == id) return true;
  }
  return false;
}

bool is_meta_rule(std::string_view id) {
  return id == "suppression-unknown-rule" ||
         id == "suppression-missing-justification";
}

}  // namespace uvmsim::lint
