// Rule registry for uvmsim_lint.
//
// Rules are grouped by the invariant family they protect:
//   D (determinism)  — byte-identical output for a (seed, config) pair,
//                      independent of thread count and address layout;
//   A (allocation)   — UVMSIM_HOT functions stay heap-allocation-free;
//   C (concurrency)  — SweepRunner/ThreadPool tasks touch no unguarded
//                      shared mutable state and never print;
//   H (hygiene)      — headers stay self-contained and asserts side-effect
//                      free;
//   meta             — diagnostics about the suppression mechanism itself
//                      (never suppressible).
#pragma once

#include <string_view>
#include <vector>

namespace uvmsim::lint {

struct RuleInfo {
  std::string_view id;        ///< stable kebab-case id used in suppressions
  std::string_view category;  ///< "determinism", "allocation", ...
  std::string_view summary;   ///< one-line description for --list-rules
};

/// All rules, in documentation order (D, A, C, H, meta).
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// True if `id` names a rule (including meta rules).
[[nodiscard]] bool is_known_rule(std::string_view id);

/// True for rules about the suppression mechanism itself; these cannot be
/// suppressed.
[[nodiscard]] bool is_meta_rule(std::string_view id);

}  // namespace uvmsim::lint
