#include "sarif.h"

#include <map>
#include <ostream>
#include <string>

#include "rules.h"

namespace uvmsim::lint {

void write_sarif(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"uvmsim_lint\",\n"
     << "          \"informationUri\": \"tools/lint/README.md\",\n"
     << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\"id\": \"" << rules[i].id
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(std::string(rules[i].summary))
       << "\"}, \"properties\": {\"category\": \"" << rules[i].category
       << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  const std::vector<std::string> ids = finding_ids(findings);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": \"" << json_escape(f.rule)
       << "\", \"level\": \"warning\", \"message\": {\"text\": \""
       << json_escape(f.message) << "\"}, \"locations\": [{"
       << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
       << (f.line > 0 ? f.line : 1) << "}}}], \"partialFingerprints\": {"
       << "\"stableId\": \"" << json_escape(ids[i]) << "\"}}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace uvmsim::lint
