// SARIF 2.1.0 writer for uvmsim_lint findings.
//
// Emits one run with the full rule catalog under tool.driver.rules and one
// result per finding. Each result carries partialFingerprints.stableId —
// the same rule:file:symbol id the JSON output and the baseline use — so
// SARIF consumers (code-scanning UIs) track findings across line churn.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyzer.h"

namespace uvmsim::lint {

void write_sarif(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace uvmsim::lint
