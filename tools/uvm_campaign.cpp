// uvm_campaign — crash-safe experiment-fleet runner.
//
// Reads a queue file of experiment requests (one `key=value` line each, see
// src/campaign/request.h), dedupes them through the content-addressed result
// cache, shards the remaining work across workers (optionally fork/exec'd
// uvmsim_cli children with a wall-clock watchdog), retries classified
// failures with deterministic backoff, and quarantines poison requests after
// the attempt budget. Progress is checkpointed through an append-only
// journal: SIGKILL the campaign at any instant and rerunning the same
// command resumes without redoing committed work — and finishes with a
// result store byte-identical to an uninterrupted run.
//
//   uvm_campaign --queue sweep.q --store results/campaign
//   uvm_campaign --queue sweep.q --store results/campaign --isolate process
//       --cli build/tools/uvmsim_cli --timeout-ms 30000
//
// Exit codes follow the shared matrix in core/errors.h: 0 all requests
// completed, 1 usage / I/O problem, 2 invalid configuration, 3 simulation
// failure outside the worker fleet, 4 finished but some requests are
// quarantined.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "campaign/campaign.h"
#include "campaign/executor.h"
#include "core/errors.h"

namespace {

using namespace uvmsim;
using namespace uvmsim::campaign;

struct CampaignCliOptions {
  std::string queue_path;
  CampaignConfig cfg;
};

void print_help() {
  std::cout <<
      R"(uvm_campaign — crash-safe experiment-fleet runner

options:
  --queue FILE         queue file, one key=value request per line (required)
  --store DIR          result store directory; created if needed (required)
  --workers N          worker count (default: UVMSIM_THREADS; 0 = hardware)
  --isolate MODE       thread | process (default thread) — process mode
                       fork/execs uvmsim_cli per attempt so a worker segfault
                       or hang is a classified result, not a campaign death
  --cli PATH           uvmsim_cli binary for --isolate process
  --timeout-ms N       per-attempt watchdog deadline, process mode only
                       (default 60000; 0 = no deadline)
  --retries N          attempt budget per request before quarantine
                       (default 3; >= 1)
  --backoff-ms N       base retry backoff, doubling per attempt (default 20)

campaign-level hazard injection (testing; rates in [0,1)):
  --hazard-worker-crash-rate R    a worker attempt crashes
  --hazard-worker-hang-rate R     a worker attempt hangs until the watchdog
  --hazard-journal-truncate-rate R  a journal append is torn mid-line
  --hazard-seed N                 hazard decision seed (default 0)

exit codes (shared with uvmsim_cli): 0 all completed, 1 usage/IO,
  2 bad config, 3 simulation failure outside the fleet (e.g. during
  queue validation), 4 some requests quarantined
)";
}

std::optional<CampaignCliOptions> parse(int argc, char** argv) {
  CampaignCliOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      print_help();
      return std::nullopt;
    } else if (a == "--queue") {
      if (!(v = need_value(i))) return std::nullopt;
      o.queue_path = v;
    } else if (a == "--store") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.store_dir = v;
    } else if (a == "--workers") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.workers = std::stoull(v);
      if (o.cfg.workers == 0) o.cfg.workers = default_workers();
    } else if (a == "--isolate") {
      if (!(v = need_value(i))) return std::nullopt;
      const std::string mode = v;
      if (mode == "thread") {
        o.cfg.process_isolation = false;
      } else if (mode == "process") {
        o.cfg.process_isolation = true;
      } else {
        std::cerr << "bad --isolate: " << mode << " (thread | process)\n";
        return std::nullopt;
      }
    } else if (a == "--cli") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.cli_path = v;
    } else if (a == "--timeout-ms") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.run_timeout_ms = std::stoull(v);
    } else if (a == "--retries") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.retry.max_attempts = static_cast<std::uint32_t>(std::stoul(v));
    } else if (a == "--backoff-ms") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.retry.backoff_base_ms = static_cast<std::uint32_t>(std::stoul(v));
    } else if (a == "--hazard-worker-crash-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.hazards.worker_crash_rate = std::stod(v);
    } else if (a == "--hazard-worker-hang-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.hazards.worker_hang_rate = std::stod(v);
    } else if (a == "--hazard-journal-truncate-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.hazards.journal_truncate_rate = std::stod(v);
    } else if (a == "--hazard-seed") {
      if (!(v = need_value(i))) return std::nullopt;
      o.cfg.hazards.seed = std::stoull(v);
    } else {
      std::cerr << "unknown option: " << a << " (try --help)\n";
      return std::nullopt;
    }
  }
  if (o.queue_path.empty() || o.cfg.store_dir.empty()) {
    std::cerr << "both --queue and --store are required (try --help)\n";
    return std::nullopt;
  }
  return o;
}

int run_campaign_cli(int argc, char** argv) {
  auto opts = parse(argc, argv);
  if (!opts) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 1;

  std::ifstream qf(opts->queue_path);
  if (!qf) {
    std::cerr << "cannot open queue: " << opts->queue_path << "\n";
    return 1;
  }
  std::vector<RunRequest> queue = parse_queue_file(qf);
  if (queue.empty()) {
    std::cerr << "queue is empty: " << opts->queue_path << "\n";
    return 1;
  }

  Campaign campaign(opts->cfg, std::move(queue));
  const CampaignReport rep = campaign.run();

  // Deterministic summary: counts and ids only, no wall-clock, no worker
  // identities — a resumed campaign's numbers differ only where they must
  // (cached / executed), never in the terminal states.
  std::cout << "campaign: " << rep.queued << " queued, " << rep.unique
            << " unique (" << rep.deduped << " deduped)\n"
            << "  cached " << rep.cached << ", executed " << rep.executed
            << " attempts (" << rep.retried << " retried)\n"
            << "  completed " << rep.completed << ", quarantined "
            << rep.quarantined << "\n";
  if (rep.journal_damaged_lines > 0) {
    std::cout << "  journal: " << rep.journal_damaged_lines
              << " damaged line(s) skipped during recovery\n";
  }
  for (const std::string& line : rep.quarantine_lines) {
    std::cout << "  quarantined " << line << "\n";
  }
  std::cout << "store: " << opts->cfg.store_dir << "\n";
  return rep.all_completed() ? uvmsim::kExitOk : uvmsim::kExitQuarantined;
}

}  // namespace

int main(int argc, char** argv) {
  // Same matrix as uvmsim_cli (core/errors.h). SimulationError gets its
  // own branch — it used to fall through to the generic 1, so a model bug
  // surfacing outside the fleet (queue validation, a thread-mode worker
  // rethrow) was indistinguishable from a bad flag.
  try {
    return run_campaign_cli(argc, argv);
  } catch (const uvmsim::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return uvmsim::exit_code_for(uvmsim::FailureKind::Config);
  } catch (const uvmsim::SimulationError& e) {
    std::cerr << "simulation error: " << e.what() << "\n";
    return uvmsim::exit_code_for(uvmsim::FailureKind::Simulation);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return uvmsim::exit_code_for(uvmsim::FailureKind::Io);
  }
}
