// uvmsim command-line interface: run any workload under any driver
// configuration and print a full instrumentation report — the tool a
// downstream user reaches for first.
//
//   uvmsim_cli --workload sgemm --size-mib 96 --gpu-mib 128
//   uvmsim_cli --workload random --size-mib 192 --prefetch off --pattern
//   uvmsim_cli --help
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/atomic_file.h"
#include "core/env.h"
#include "core/errors.h"
#include "core/metrics.h"
#include "core/pattern_analyzer.h"
#include "core/timeline.h"
#include "core/report.h"
#include "baseline/explicit_transfer.h"
#include "core/simulator.h"
#include "uvm/replay_policy.h"
#include "workloads/registry.h"
#include "workloads/trace_io.h"

namespace {

using namespace uvmsim;

struct CliOptions {
  std::string workload = "regular";
  std::uint64_t size_mib = 64;
  std::uint64_t gpu_mib = 128;
  bool size_set = false;  ///< --size-mib given (--full-scale keeps it then)
  bool gpu_set = false;   ///< --gpu-mib given
  /// Full-fidelity Titan V preset: 12 GB GPU memory, 80 SMs, and (unless
  /// overridden) a 16 GiB oversubscribed working set — millions of 4 KB
  /// pages per run.
  bool full_scale = false;
  /// Intra-run servicing lanes; -1 = seed from UVMSIM_THREADS (default 1 =
  /// serial), 0 = hardware concurrency.
  std::int64_t lanes = -1;
  std::string backend = "driver";  // driver | gpu
  std::string prefetch = "on";  // on | off | adaptive
  std::string prefetch_policy = "tree";  // tree | markov
  std::uint32_t threshold = 51;
  std::string policy = "batch_flush";
  std::string eviction = "lru";  // lru | access_counter | clock | 2q
  std::string chunking = "on";  // on | off
  double split_watermark = -1.0;  // < 0 = keep DriverConfig default
  double fine_watermark = -1.0;
  std::uint32_t batch_size = 256;
  std::string thrash = "off";  // off | detect | pin | throttle
  std::uint64_t seed = 42;
  std::uint64_t hazard_seed = 0;  // 0 = derive from --seed
  double hazard_dma = 0.0;
  double hazard_fb = 0.0;
  double hazard_pma = 0.0;
  double hazard_ac = 0.0;
  bool pattern = false;
  bool csv = false;
  bool pipelined = false;
  bool explicit_baseline = false;
  std::string dump_trace;    // capture the workload's trace to this file
  std::string replay_trace;  // run this trace file instead of --workload
  std::string trace_out;     // driver-pass trace (Chrome trace_event JSON)
  std::string trace_categories = "all";
  std::uint64_t trace_cap = TraceConfig{}.capacity;
  std::string hazard_self;  // "" | abort | hang — self-sabotage test hook
};

void print_help() {
  std::cout <<
      R"(uvmsim_cli — UVM demand-paging simulator front end

options:
  --workload NAME      regular|random|sgemm|stream|cufft|tealeaf|hpgmg|cusparse|bfs
  --size-mib N         managed data footprint (default 64)
  --gpu-mib N          simulated GPU memory (default 128)
  --full-scale         full-fidelity Titan V preset: 12 GB GPU memory,
                       80 SMs, 16 GiB working set (explicit --size-mib /
                       --gpu-mib still win); servicing lanes default to
                       UVMSIM_THREADS
  --lanes N            intra-run servicing lanes (deterministic: output is
                       byte-identical for every value); 0 = hardware
                       concurrency (default: UVMSIM_THREADS, i.e. 1)
  --backend B          driver | gpu — fault-servicing backend: the CPU
                       driver's batched path, or GPUVM-style per-fault
                       GPU-side resolution (default driver)
  --prefetch MODE      on | off | adaptive (default on)
  --prefetch-policy P  tree | markov — which predictor speculates while
                       prefetching is on: the paper's static density tree,
                       or the online-learned delta-Markov table (default
                       tree; markov cannot combine with --prefetch adaptive)
  --threshold P        density threshold percent 1..100 (default 51)
  --policy P           block | batch | batch_flush | once (default batch_flush)
  --eviction P         lru | access_counter | clock | 2q (default lru);
                       --eviction-policy is an alias
  --chunking MODE      on | off — chunked PMA backing: split 2 MB root
                       chunks to 64 KB/4 KB under memory pressure (default on)
  --split-watermark F  free-memory fraction below which blocks split to
                       64 KB chunks (default 1/16)
  --fine-watermark F   fraction below which partially-wanted big pages
                       split to 4 KB chunks (default 1/64; <= split)
  --batch-size N       faults per driver batch (default 256)
  --thrash MODE        off | detect | pin | throttle (default off)
  --seed N             simulation seed (default 42)
  --pipelined          overlap migrations with servicing (extension)

hazard injection (all rates in [0,1), default 0 = no injection):
  --hazard-dma-fail-rate R   probability a DMA copy run fails and is retried
  --hazard-fb-corrupt-rate R probability a fault-buffer entry is corrupted
                             (dropped / duplicated / ready-stalled)
  --hazard-pma-fail-rate R   probability of a transient allocation failure
  --hazard-ac-drop-rate R    probability an access-counter notification is
                             lost
  --hazard-seed N            hazard stream seed (default: derived from --seed)
  --hazard-self MODE         abort | hang — sabotage this process before the
                             run (campaign fault-injection test hook)

driver-pass tracing (viewable in Perfetto / chrome://tracing):
  --trace-out FILE     record per-pass driver spans and write Chrome
                       trace_event JSON to FILE; also prints a per-category
                       latency summary
  --trace-categories L comma list of fetch,service,prefetch,replay,eviction,
                       recovery, or "all" (default all)
  --trace-cap N        trace ring-buffer capacity in events (default 65536;
                       oldest events are overwritten past the cap)

  --pattern            print the Fig.7-style fault scatter
  --baseline           also run the explicit-transfer baseline
  --csv                emit csv rows for the summary
  --dump-trace FILE    capture the workload's access trace to FILE and exit
  --replay-trace FILE  run a captured trace instead of a named workload
  --help               this text
)";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      print_help();
      return std::nullopt;
    } else if (a == "--pattern") {
      o.pattern = true;
    } else if (a == "--pipelined") {
      o.pipelined = true;
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--baseline") {
      o.explicit_baseline = true;
    } else if (a == "--workload") {
      if (!(v = need_value(i))) return std::nullopt;
      o.workload = v;
    } else if (a == "--size-mib") {
      if (!(v = need_value(i))) return std::nullopt;
      o.size_mib = std::stoull(v);
      o.size_set = true;
    } else if (a == "--gpu-mib") {
      if (!(v = need_value(i))) return std::nullopt;
      o.gpu_mib = std::stoull(v);
      o.gpu_set = true;
    } else if (a == "--full-scale") {
      o.full_scale = true;
    } else if (a == "--lanes") {
      if (!(v = need_value(i))) return std::nullopt;
      try {
        o.lanes = std::stoll(v);
      } catch (const std::exception&) {
        o.lanes = -2;
      }
      if (o.lanes < 0) {
        std::cerr << "bad --lanes: " << v << " (want a non-negative integer)\n";
        return std::nullopt;
      }
    } else if (a == "--backend") {
      if (!(v = need_value(i))) return std::nullopt;
      o.backend = v;
    } else if (a == "--prefetch") {
      if (!(v = need_value(i))) return std::nullopt;
      o.prefetch = v;
    } else if (a == "--prefetch-policy") {
      if (!(v = need_value(i))) return std::nullopt;
      o.prefetch_policy = v;
    } else if (a == "--threshold") {
      if (!(v = need_value(i))) return std::nullopt;
      o.threshold = static_cast<std::uint32_t>(std::stoul(v));
    } else if (a == "--policy") {
      if (!(v = need_value(i))) return std::nullopt;
      o.policy = v;
    } else if (a == "--eviction" || a == "--eviction-policy") {
      if (!(v = need_value(i))) return std::nullopt;
      o.eviction = v;
    } else if (a == "--chunking") {
      if (!(v = need_value(i))) return std::nullopt;
      o.chunking = v;
    } else if (a == "--split-watermark") {
      if (!(v = need_value(i))) return std::nullopt;
      o.split_watermark = std::stod(v);
    } else if (a == "--fine-watermark") {
      if (!(v = need_value(i))) return std::nullopt;
      o.fine_watermark = std::stod(v);
    } else if (a == "--batch-size") {
      if (!(v = need_value(i))) return std::nullopt;
      o.batch_size = static_cast<std::uint32_t>(std::stoul(v));
    } else if (a == "--thrash") {
      if (!(v = need_value(i))) return std::nullopt;
      o.thrash = v;
    } else if (a == "--seed") {
      if (!(v = need_value(i))) return std::nullopt;
      o.seed = std::stoull(v);
    } else if (a == "--hazard-seed") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_seed = std::stoull(v);
    } else if (a == "--hazard-dma-fail-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_dma = std::stod(v);
    } else if (a == "--hazard-fb-corrupt-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_fb = std::stod(v);
    } else if (a == "--hazard-pma-fail-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_pma = std::stod(v);
    } else if (a == "--hazard-ac-drop-rate") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_ac = std::stod(v);
    } else if (a == "--hazard-self") {
      if (!(v = need_value(i))) return std::nullopt;
      o.hazard_self = v;
      if (o.hazard_self != "abort" && o.hazard_self != "hang") {
        std::cerr << "bad --hazard-self: " << v << " (abort | hang)\n";
        return std::nullopt;
      }
    } else if (a == "--dump-trace") {
      if (!(v = need_value(i))) return std::nullopt;
      o.dump_trace = v;
    } else if (a == "--replay-trace") {
      if (!(v = need_value(i))) return std::nullopt;
      o.replay_trace = v;
    } else if (a == "--trace-out") {
      if (!(v = need_value(i))) return std::nullopt;
      o.trace_out = v;
    } else if (a == "--trace-categories") {
      if (!(v = need_value(i))) return std::nullopt;
      o.trace_categories = v;
    } else if (a == "--trace-cap") {
      if (!(v = need_value(i))) return std::nullopt;
      try {
        o.trace_cap = std::stoull(v);
      } catch (const std::exception&) {
        std::cerr << "bad --trace-cap: " << v << "\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown option: " << a << " (try --help)\n";
      return std::nullopt;
    }
  }
  return o;
}

std::optional<SimConfig> to_config(const CliOptions& o) {
  SimConfig cfg;
  std::uint64_t gpu_mib = o.gpu_mib;
  if (o.full_scale) {
    // Titan V fidelity mode (the paper's hardware): 12 GB HBM2, 80 SMs.
    if (!o.gpu_set) gpu_mib = 12 * 1024;
    cfg.gpu.num_sms = 80;
  }
  cfg.set_gpu_memory(gpu_mib << 20);
  cfg.seed = o.seed;
  cfg.enable_fault_log = o.pattern;
  cfg.driver.batch_size = o.batch_size;
  cfg.driver.prefetch_threshold = o.threshold;
  // Intra-run lanes: byte-identical output for any value; only wall-clock
  // changes. Seeded from UVMSIM_THREADS so the sweep knob and the intra-run
  // knob read the same dial.
  cfg.driver.service_lanes = static_cast<std::uint32_t>(
      o.lanes >= 0 ? clamp_thread_count(static_cast<std::uint64_t>(o.lanes),
                                        "--lanes")
                   : env_threads());

  if (o.backend == "driver") {
    cfg.driver.backend = ServicingBackendKind::DriverCentric;
  } else if (o.backend == "gpu") {
    cfg.driver.backend = ServicingBackendKind::GpuDriven;
  } else {
    std::cerr << "bad --backend: " << o.backend << " (driver | gpu)\n";
    return std::nullopt;
  }

  if (o.prefetch == "on") {
    cfg.driver.prefetch_enabled = true;
  } else if (o.prefetch == "off") {
    cfg.driver.prefetch_enabled = false;
  } else if (o.prefetch == "adaptive") {
    cfg.driver.prefetch_enabled = true;
    cfg.driver.adaptive_prefetch = true;
  } else {
    std::cerr << "bad --prefetch: " << o.prefetch << "\n";
    return std::nullopt;
  }

  if (o.prefetch_policy == "tree") {
    cfg.driver.prefetch_policy = PrefetchPolicyKind::Tree;
  } else if (o.prefetch_policy == "markov") {
    cfg.driver.prefetch_policy = PrefetchPolicyKind::Markov;
    if (cfg.driver.adaptive_prefetch) {
      std::cerr << "bad --prefetch-policy: markov cannot combine with "
                   "--prefetch adaptive\n";
      return std::nullopt;
    }
  } else {
    std::cerr << "bad --prefetch-policy: " << o.prefetch_policy
              << " (tree | markov)\n";
    return std::nullopt;
  }

  if (o.policy == "block") {
    cfg.driver.replay_policy = ReplayPolicyKind::Block;
  } else if (o.policy == "batch") {
    cfg.driver.replay_policy = ReplayPolicyKind::Batch;
  } else if (o.policy == "batch_flush") {
    cfg.driver.replay_policy = ReplayPolicyKind::BatchFlush;
  } else if (o.policy == "once") {
    cfg.driver.replay_policy = ReplayPolicyKind::Once;
  } else {
    std::cerr << "bad --policy: " << o.policy << "\n";
    return std::nullopt;
  }

  if (o.eviction == "lru") {
    cfg.driver.eviction_policy = EvictionPolicyKind::Lru;
  } else if (o.eviction == "access_counter") {
    cfg.driver.eviction_policy = EvictionPolicyKind::AccessCounter;
    cfg.access_counters.enabled = true;
  } else if (o.eviction == "clock") {
    cfg.driver.eviction_policy = EvictionPolicyKind::Clock;
  } else if (o.eviction == "2q") {
    cfg.driver.eviction_policy = EvictionPolicyKind::TwoQ;
  } else {
    std::cerr << "bad --eviction: " << o.eviction
              << " (lru | access_counter | clock | 2q)\n";
    return std::nullopt;
  }

  cfg.driver.pipelined_migrations = o.pipelined;
  if (o.chunking == "on") {
    cfg.driver.chunking.enabled = true;
  } else if (o.chunking == "off") {
    cfg.driver.chunking.enabled = false;
  } else {
    std::cerr << "bad --chunking: " << o.chunking << "\n";
    return std::nullopt;
  }
  if (o.split_watermark >= 0.0) {
    cfg.driver.chunking.split_watermark = o.split_watermark;
  }
  if (o.fine_watermark >= 0.0) {
    cfg.driver.chunking.fine_watermark = o.fine_watermark;
  }

  cfg.hazards.seed = o.hazard_seed;
  cfg.hazards.dma_fail_rate = o.hazard_dma;
  cfg.hazards.fb_corrupt_rate = o.hazard_fb;
  cfg.hazards.pma_fail_rate = o.hazard_pma;
  cfg.hazards.ac_drop_rate = o.hazard_ac;

  if (!o.trace_out.empty()) {
    auto mask = parse_trace_categories(o.trace_categories);
    if (!mask) {
      std::cerr << "bad --trace-categories: " << o.trace_categories << "\n";
      return std::nullopt;
    }
    if (o.trace_cap == 0) {
      std::cerr << "bad --trace-cap: must be >= 1\n";
      return std::nullopt;
    }
    cfg.trace.enabled = true;
    cfg.trace.categories = *mask;
    cfg.trace.capacity = o.trace_cap;
  }

  if (o.thrash != "off") {
    cfg.driver.thrashing.enabled = true;
    if (o.thrash == "detect") {
      cfg.driver.thrashing.mitigation = ThrashMitigation::None;
    } else if (o.thrash == "pin") {
      cfg.driver.thrashing.mitigation = ThrashMitigation::Pin;
    } else if (o.thrash == "throttle") {
      cfg.driver.thrashing.mitigation = ThrashMitigation::Throttle;
    } else {
      std::cerr << "bad --thrash: " << o.thrash << "\n";
      return std::nullopt;
    }
  }
  return cfg;
}

/// The CLI body; throws ConfigError / SimulationError out to main, which
/// maps them to distinct exit codes.
int run_cli(int argc, char** argv) {
  auto opts = parse(argc, argv);
  if (!opts) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 1;
  auto cfg = to_config(*opts);
  if (!cfg) return 1;

  // Self-sabotage test hook: campaign fault-injection tests exec this
  // binary with --hazard-self so a worker crash / hang is *real* (an
  // actual SIGABRT, an actual watchdog kill), not a simulated one.
  if (opts->hazard_self == "abort") {
    std::abort();
  } else if (opts->hazard_self == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  // ConfigError / SimulationError from trace parsing or workload lookup
  // propagate to main for the distinct exit codes; only plain open/write
  // failures are handled here as usage errors.
  std::uint64_t size_mib = opts->size_mib;
  if (opts->full_scale && !opts->size_set) size_mib = 16 * 1024;

  std::unique_ptr<Workload> wl;
  if (!opts->replay_trace.empty()) {
    std::ifstream in(opts->replay_trace);
    if (!in) {
      std::cerr << "cannot open trace: " << opts->replay_trace << "\n";
      return 1;
    }
    wl = std::make_unique<TraceWorkload>(parse_trace(in),
                                         opts->replay_trace);
  } else {
    wl = make_workload(opts->workload, size_mib << 20);
  }
  if (!opts->dump_trace.empty()) {
    std::ostringstream out;
    write_trace(out, capture_trace(*wl, *cfg));
    atomic_write_file(opts->dump_trace, out.str());
    std::cout << "trace written to " << opts->dump_trace << "\n";
    return 0;
  }

  Simulator sim(*cfg);
  wl->setup(sim);
  RunResult r = sim.run();

  std::cout << "workload " << wl->name() << ", "
            << format_bytes(r.total_bytes) << " on "
            << format_bytes(cfg->gpu_memory()) << " GPU ("
            << fmt(100.0 * r.oversubscription(), 4) << " %)\n";

  // The summary table is shared with the campaign's in-process worker so
  // both isolation modes commit byte-identical result payloads.
  Table summary = run_summary_table(r);
  if (opts->csv) {
    std::cout << summary.to_csv();
  }
  std::cout << summary.to_text();

  Table breakdown({"driver_category", "time", "share_pct"});
  SimDuration grand = r.profiler.grand_total();
  for (std::size_t i = 0; i < Profiler::kNumCategories; ++i) {
    auto c = static_cast<CostCategory>(i);
    if (r.profiler.total(c) == 0) continue;
    double share = grand ? 100.0 * static_cast<double>(r.profiler.total(c)) /
                               static_cast<double>(grand)
                         : 0.0;
    breakdown.add_row({std::string(to_string(c)),
                       format_duration(r.profiler.total(c)),
                       fmt(share, 3)});
  }
  std::cout << '\n' << breakdown.to_text();

  if (r.hazards_enabled) {
    Table hz = hazard_report(r);
    if (opts->csv) std::cout << hz.to_csv();
    std::cout << "\nhazard injection & recovery:\n" << hz.to_text();
  }

  if (r.stall_latency.count() > 0) {
    Table lat({"latency", "p50", "p90", "p99", "samples"});
    auto q = [](const LogHistogram& h, double p_) {
      return format_duration(static_cast<SimDuration>(h.quantile(p_)));
    };
    lat.add_row({"warp_stall", q(r.stall_latency, 0.5),
                 q(r.stall_latency, 0.9), q(r.stall_latency, 0.99),
                 fmt(r.stall_latency.count())});
    lat.add_row({"fault_queue", q(r.fault_queue_latency, 0.5),
                 q(r.fault_queue_latency, 0.9),
                 q(r.fault_queue_latency, 0.99),
                 fmt(r.fault_queue_latency.count())});
    std::cout << '\n' << lat.to_text();
  }

  if (opts->pattern) {
    PatternAnalyzer pa(sim.address_space());
    auto pts = pa.points(r.fault_log);
    std::cout << "\naccess pattern ('.' fault, '+' prefetch, 'E' evict):\n"
              << pa.ascii_scatter(pts, 110, 28);

    Timeline tl(r.fault_log, std::max<SimDuration>(r.end_time / 100, 1));
    std::cout << "\nactivity over time:\n"
              << "  faults    |" << tl.sparkline(FaultLogKind::Fault, 100)
              << "|\n"
              << "  prefetch  |" << tl.sparkline(FaultLogKind::Prefetch, 100)
              << "|\n"
              << "  evictions |" << tl.sparkline(FaultLogKind::Eviction, 100)
              << "|\n";
  }

  if (!opts->trace_out.empty() && sim.tracer() != nullptr) {
    const Tracer& tr = *sim.tracer();
    atomic_write_file(opts->trace_out,
                      [&tr](std::ostream& out) { write_chrome_trace(out, tr); });
    std::cout << "\ndriver trace: " << tr.recorded() << " events recorded, "
              << tr.dropped() << " overwritten -> " << opts->trace_out
              << "\n\n"
              << summarize_trace(tr).to_string();
  }

  if (opts->explicit_baseline) {
    auto wl2 = make_workload(opts->workload, size_mib << 20);
    ExplicitResult ex = ExplicitTransfer::run(*cfg, *wl2);
    std::cout << "\nexplicit-transfer baseline: "
              << format_duration(ex.total) << " (UVM is "
              << fmt(slowdown(ex.total, r.total_kernel_time()), 3)
              << "x)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The shared exit-code matrix (core/errors.h): 0 success, 1 usage / I/O
  // problem, 2 invalid configuration, 3 simulation failure (e.g. deadlock)
  // — scripts can tell "fix your flags" apart from "the simulated system
  // wedged", and ProcessWorker inverts the same table on the other side of
  // a fork/exec.
  try {
    return run_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return exit_code_for(FailureKind::Config);
  } catch (const SimulationError& e) {
    std::cerr << "simulation error: " << e.what() << "\n";
    return exit_code_for(FailureKind::Simulation);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code_for(FailureKind::Io);
  }
}
